//! Segment storage backends for the write-ahead log.
//!
//! A [`Store`] holds numbered append-only segments. The log writes through
//! one *current* segment at a time and maintains the **sync-before-rotate
//! invariant**: before opening segment `n+1` it syncs segment `n`, so every
//! non-current segment is fully durable and only the current segment can
//! lose a suffix in a crash.
//!
//! Backends:
//!
//! - [`DirStore`] — real files in a directory (`wal-00000000.seg`, ...);
//! - [`MemStore`] — in-memory, modeling the durable/volatile split that
//!   fsync collapses, with crash/truncate/corrupt helpers for tests;
//! - [`SharedMemStore`] — a cloneable handle over a [`MemStore`] so a test
//!   harness keeps inspection access after the log consumes the store;
//! - [`FaultyStore`] — a wrapper that kills writes at scripted points.

use crate::WalError;
use std::collections::BTreeMap;
use std::fs;
use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// An append-only segment store. Object-safe and [`Send`] so the log can
/// own any backend behind a `Box<dyn Store>` and move across threads.
pub trait Store: Send {
    /// Creates empty segment `index` and makes it the append target.
    fn open_segment(&mut self, index: u64) -> Result<(), WalError>;

    /// Appends `bytes` to the current segment.
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError>;

    /// Makes everything appended to the current segment durable.
    fn sync(&mut self) -> Result<(), WalError>;

    /// The segment indexes present, ascending.
    fn list(&self) -> Result<Vec<u64>, WalError>;

    /// Reads segment `index` in full.
    fn read(&self, index: u64) -> Result<Vec<u8>, WalError>;

    /// Deletes segment `index` (checkpoint pruning).
    fn remove(&mut self, index: u64) -> Result<(), WalError>;
}

// ---------------------------------------------------------------------------
// MemStore

#[derive(Clone, Default, Debug)]
struct MemSegment {
    data: Vec<u8>,
    /// Bytes guaranteed to survive a crash (advanced by `sync`).
    durable: usize,
}

/// An in-memory store that models the durable/volatile split: appended
/// bytes sit in a volatile suffix until [`Store::sync`] moves the durable
/// mark, and [`MemStore::crashed`] discards exactly the volatile part.
#[derive(Clone, Default, Debug)]
pub struct MemStore {
    segments: BTreeMap<u64, MemSegment>,
    current: Option<u64>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The store as a crash would leave it: every segment truncated to its
    /// durable length. With `keep_volatile`, unsynced bytes survive too —
    /// the lucky crash where the OS had already flushed them; recovery
    /// must cope with both.
    pub fn crashed(&self, keep_volatile: bool) -> MemStore {
        let segments = self
            .segments
            .iter()
            .map(|(&i, s)| {
                let len = if keep_volatile {
                    s.data.len()
                } else {
                    s.durable
                };
                let data = s.data[..len].to_vec();
                (
                    i,
                    MemSegment {
                        durable: data.len(),
                        data,
                    },
                )
            })
            .collect();
        MemStore {
            segments,
            current: None,
        }
    }

    /// Total bytes written across all segments, in segment order.
    pub fn total_bytes(&self) -> usize {
        self.segments.values().map(|s| s.data.len()).sum()
    }

    /// The store truncated to the first `bytes` of the concatenated
    /// segment stream — a crash at an arbitrary byte position. Segments
    /// wholly past the cut disappear (they were never created).
    pub fn prefix(&self, mut bytes: usize) -> MemStore {
        let mut out = MemStore::new();
        for (&i, s) in &self.segments {
            if bytes == 0 {
                break;
            }
            let take = s.data.len().min(bytes);
            bytes -= take;
            let data = s.data[..take].to_vec();
            out.segments.insert(
                i,
                MemSegment {
                    durable: data.len(),
                    data,
                },
            );
        }
        out
    }

    /// XORs `mask` into the byte at `offset` of the concatenated segment
    /// stream (bit-rot injection). Panics if `offset` is out of range —
    /// test-harness misuse, not a recovery input.
    pub fn corrupt(&mut self, mut offset: usize, mask: u8) {
        for s in self.segments.values_mut() {
            if offset < s.data.len() {
                s.data[offset] ^= mask;
                return;
            }
            offset -= s.data.len();
        }
        panic!("corrupt offset past end of log");
    }

    fn current_mut(&mut self) -> Result<&mut MemSegment, WalError> {
        let index = self
            .current
            .ok_or_else(|| WalError::Io("no open segment".into()))?;
        Ok(self
            .segments
            .get_mut(&index)
            .expect("current segment exists"))
    }
}

impl Store for MemStore {
    fn open_segment(&mut self, index: u64) -> Result<(), WalError> {
        if self.segments.contains_key(&index) {
            return Err(WalError::Io(format!("segment {index} already exists")));
        }
        self.segments.insert(index, MemSegment::default());
        self.current = Some(index);
        Ok(())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.current_mut()?.data.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        let seg = self.current_mut()?;
        seg.durable = seg.data.len();
        Ok(())
    }

    fn list(&self) -> Result<Vec<u64>, WalError> {
        Ok(self.segments.keys().copied().collect())
    }

    fn read(&self, index: u64) -> Result<Vec<u8>, WalError> {
        self.segments
            .get(&index)
            .map(|s| s.data.clone())
            .ok_or_else(|| WalError::Io(format!("segment {index} not found")))
    }

    fn remove(&mut self, index: u64) -> Result<(), WalError> {
        self.segments
            .remove(&index)
            .map(|_| ())
            .ok_or_else(|| WalError::Io(format!("segment {index} not found")))
    }
}

// ---------------------------------------------------------------------------
// SharedMemStore

/// A cloneable handle over a [`MemStore`]. The log consumes its store by
/// value (`Box<dyn Store>`); handing it a `SharedMemStore` lets the test
/// harness keep a second handle to crash, corrupt, and recover from the
/// same bytes the log wrote.
#[derive(Clone, Default, Debug)]
pub struct SharedMemStore {
    inner: Arc<Mutex<MemStore>>,
}

impl SharedMemStore {
    /// A handle to a fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the underlying store at this moment.
    pub fn snapshot(&self) -> MemStore {
        self.inner.lock().expect("store lock").clone()
    }

    /// Runs `f` against the underlying store.
    pub fn with<R>(&self, f: impl FnOnce(&mut MemStore) -> R) -> R {
        f(&mut self.inner.lock().expect("store lock"))
    }
}

impl Store for SharedMemStore {
    fn open_segment(&mut self, index: u64) -> Result<(), WalError> {
        self.with(|s| s.open_segment(index))
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.with(|s| s.append(bytes))
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.with(|s| s.sync())
    }

    fn list(&self) -> Result<Vec<u64>, WalError> {
        self.inner.lock().expect("store lock").list()
    }

    fn read(&self, index: u64) -> Result<Vec<u8>, WalError> {
        self.inner.lock().expect("store lock").read(index)
    }

    fn remove(&mut self, index: u64) -> Result<(), WalError> {
        self.with(|s| s.remove(index))
    }
}

// ---------------------------------------------------------------------------
// DirStore

/// A store over real files: segment `n` is `wal-<n:08>.seg` in the
/// directory, synced with `File::sync_data`.
#[derive(Debug)]
pub struct DirStore {
    dir: PathBuf,
    current: Option<(u64, fs::File)>,
}

impl DirStore {
    /// Opens (creating if absent) the segment directory at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, WalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DirStore { dir, current: None })
    }

    fn path(&self, index: u64) -> PathBuf {
        self.dir.join(format!("wal-{index:08}.seg"))
    }
}

impl Store for DirStore {
    fn open_segment(&mut self, index: u64) -> Result<(), WalError> {
        let file = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(self.path(index))?;
        self.current = Some((index, file));
        Ok(())
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        let (_, file) = self
            .current
            .as_mut()
            .ok_or_else(|| WalError::Io("no open segment".into()))?;
        file.write_all(bytes)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        let (_, file) = self
            .current
            .as_mut()
            .ok_or_else(|| WalError::Io("no open segment".into()))?;
        file.sync_data()?;
        Ok(())
    }

    fn list(&self) -> Result<Vec<u64>, WalError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".seg"))
            {
                if let Ok(index) = num.parse::<u64>() {
                    out.push(index);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn read(&self, index: u64) -> Result<Vec<u8>, WalError> {
        let mut data = Vec::new();
        fs::File::open(self.path(index))?.read_to_end(&mut data)?;
        Ok(data)
    }

    fn remove(&mut self, index: u64) -> Result<(), WalError> {
        fs::remove_file(self.path(index))?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FaultyStore

/// A store wrapper that simulates a crash at a scripted point: after a
/// byte budget runs out mid-append (leaving a torn partial write behind)
/// or on the nth sync (leaving everything since the last sync volatile).
/// After the fault fires, every operation returns [`WalError::Crashed`].
pub struct FaultyStore<S> {
    inner: S,
    /// Remaining append-byte budget; the append that exhausts it is torn.
    fail_after_bytes: Option<u64>,
    /// Remaining syncs before the fault; `Some(0)` kills the next sync.
    fail_on_sync: Option<u64>,
    dead: bool,
}

impl<S: Store> FaultyStore<S> {
    /// Wraps `inner` with no scripted fault (use the builders below).
    pub fn new(inner: S) -> Self {
        FaultyStore {
            inner,
            fail_after_bytes: None,
            fail_on_sync: None,
            dead: false,
        }
    }

    /// Crashes mid-append once `budget` appended bytes have been written:
    /// the fatal append writes only its first remaining-budget bytes.
    pub fn fail_after_bytes(mut self, budget: u64) -> Self {
        self.fail_after_bytes = Some(budget);
        self
    }

    /// Crashes on the `nth` sync call (0-based) without syncing, so bytes
    /// appended since the previous sync stay volatile.
    pub fn fail_on_sync(mut self, nth: u64) -> Self {
        self.fail_on_sync = Some(nth);
        self
    }

    /// Whether the scripted fault has fired.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn check_alive(&self) -> Result<(), WalError> {
        if self.dead {
            return Err(WalError::Crashed);
        }
        Ok(())
    }
}

impl<S: Store> Store for FaultyStore<S> {
    fn open_segment(&mut self, index: u64) -> Result<(), WalError> {
        self.check_alive()?;
        self.inner.open_segment(index)
    }

    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.check_alive()?;
        if let Some(budget) = self.fail_after_bytes {
            if (bytes.len() as u64) > budget {
                // Torn write: the crash lands mid-append.
                self.inner.append(&bytes[..budget as usize])?;
                self.dead = true;
                return Err(WalError::Crashed);
            }
            self.fail_after_bytes = Some(budget - bytes.len() as u64);
        }
        self.inner.append(bytes)
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.check_alive()?;
        if let Some(nth) = self.fail_on_sync.as_mut() {
            if *nth == 0 {
                self.dead = true;
                return Err(WalError::Crashed);
            }
            *nth -= 1;
        }
        self.inner.sync()
    }

    fn list(&self) -> Result<Vec<u64>, WalError> {
        self.check_alive()?;
        self.inner.list()
    }

    fn read(&self, index: u64) -> Result<Vec<u8>, WalError> {
        self.check_alive()?;
        self.inner.read(index)
    }

    fn remove(&mut self, index: u64) -> Result<(), WalError> {
        self.check_alive()?;
        self.inner.remove(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(store: &mut dyn Store) {
        store.open_segment(0).unwrap();
        store.append(b"aaaa").unwrap();
        store.sync().unwrap();
        store.append(b"bbbb").unwrap();
        store.open_segment(1).unwrap();
        store.append(b"cc").unwrap();
    }

    #[test]
    fn mem_store_models_durability() {
        let mut store = MemStore::new();
        filled(&mut store);
        assert_eq!(store.list().unwrap(), vec![0, 1]);
        assert_eq!(store.read(0).unwrap(), b"aaaabbbb");
        // A crash keeps only synced bytes; segment 1 was never synced.
        let crashed = store.crashed(false);
        assert_eq!(crashed.read(0).unwrap(), b"aaaa");
        assert_eq!(crashed.read(1).unwrap(), b"");
        // A lucky crash may keep everything.
        let lucky = store.crashed(true);
        assert_eq!(lucky.read(0).unwrap(), b"aaaabbbb");
        assert_eq!(lucky.read(1).unwrap(), b"cc");
    }

    #[test]
    fn mem_store_prefix_cuts_across_segments() {
        let mut store = MemStore::new();
        filled(&mut store);
        assert_eq!(store.total_bytes(), 10);
        let cut = store.prefix(9);
        assert_eq!(cut.read(0).unwrap(), b"aaaabbbb");
        assert_eq!(cut.read(1).unwrap(), b"c");
        let cut = store.prefix(3);
        assert_eq!(cut.read(0).unwrap(), b"aaa");
        assert_eq!(cut.list().unwrap(), vec![0]);
    }

    #[test]
    fn mem_store_corrupt_addresses_the_concatenated_stream() {
        let mut store = MemStore::new();
        filled(&mut store);
        store.corrupt(8, 0x01); // first byte of segment 1
        assert_eq!(store.read(1).unwrap(), b"bc");
    }

    #[test]
    fn shared_handle_sees_writes_through_the_boxed_store() {
        let handle = SharedMemStore::new();
        let mut boxed: Box<dyn Store> = Box::new(handle.clone());
        boxed.open_segment(0).unwrap();
        boxed.append(b"xyz").unwrap();
        assert_eq!(handle.snapshot().read(0).unwrap(), b"xyz");
    }

    #[test]
    fn dir_store_round_trips_through_real_files() {
        let dir =
            std::env::temp_dir().join(format!("slp-durability-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = DirStore::open(&dir).unwrap();
        filled(&mut store);
        // A re-opened store (recovery path) sees the same segments.
        let reopened = DirStore::open(&dir).unwrap();
        assert_eq!(reopened.list().unwrap(), vec![0, 1]);
        assert_eq!(reopened.read(0).unwrap(), b"aaaabbbb");
        assert_eq!(reopened.read(1).unwrap(), b"cc");
        let mut store = reopened;
        store.remove(0).unwrap();
        assert_eq!(store.list().unwrap(), vec![1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_store_tears_the_fatal_append() {
        let handle = SharedMemStore::new();
        let mut faulty = FaultyStore::new(handle.clone()).fail_after_bytes(6);
        faulty.open_segment(0).unwrap();
        faulty.append(b"aaaa").unwrap();
        assert_eq!(faulty.append(b"bbbb"), Err(WalError::Crashed));
        assert!(faulty.is_dead());
        // The torn write left exactly the remaining budget behind.
        assert_eq!(handle.snapshot().read(0).unwrap(), b"aaaabb");
        // Everything after the crash fails.
        assert_eq!(faulty.append(b"x"), Err(WalError::Crashed));
        assert_eq!(faulty.sync(), Err(WalError::Crashed));
        assert_eq!(faulty.list(), Err(WalError::Crashed));
    }

    #[test]
    fn faulty_store_kills_the_nth_sync_leaving_bytes_volatile() {
        let handle = SharedMemStore::new();
        let mut faulty = FaultyStore::new(handle.clone()).fail_on_sync(1);
        faulty.open_segment(0).unwrap();
        faulty.append(b"aaaa").unwrap();
        faulty.sync().unwrap(); // sync 0 passes
        faulty.append(b"bbbb").unwrap();
        assert_eq!(faulty.sync(), Err(WalError::Crashed));
        let crashed = handle.snapshot().crashed(false);
        assert_eq!(crashed.read(0).unwrap(), b"aaaa");
    }
}
