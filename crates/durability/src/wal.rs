//! The write-ahead log: group-committed appends, segment rotation, and
//! automatic fuzzy checkpoints.
//!
//! One [`Wal`] records one runtime run. Appends land in the current
//! segment immediately; [`Store::sync`] is called every
//! [`WalConfig::group_commit`] records (and on [`Wal::flush`]), so the
//! fsync cost is amortised across a group. Before rotating to a new
//! segment the old one is synced — the *sync-before-rotate* invariant —
//! so only the newest segment can lose a suffix in a crash.
//!
//! The log maintains its own replica of the replayed state: stamped steps
//! pass through [`Wal::append_steps`] anyway, so once the contiguous
//! watermark advances past them they are folded into an in-log
//! [`StructuralState`] + held-locks replica. When
//! [`WalConfig::checkpoint_every`] steps have been folded since the last
//! checkpoint, the log emits a [`Checkpoint`] record by itself — callers
//! never compute checkpoint state.
//!
//! Any store error marks the log failed: every later call returns
//! [`WalError::Crashed`] without touching the store, and the runtime
//! finishes the run in memory, reporting the failure in its summary.

use crate::frame::{encode_frame, Checkpoint, Record};
use crate::recover::replay_step;
use crate::store::Store;
use crate::{WalError, SEGMENT_MAGIC};
use slp_core::{EntityId, LockMode, ScheduledStep, StructuralState, TxId};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Tuning knobs for the log.
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Rotate to a fresh segment once the current one reaches this many
    /// bytes (the final frame may overshoot; rotation happens after it).
    pub segment_bytes: usize,
    /// Sync after this many appended records — the group-commit boundary.
    /// `1` syncs every record; larger groups amortise the fsync.
    pub group_commit: usize,
    /// Emit a checkpoint after this many steps have been folded into the
    /// watermark since the previous checkpoint. `0` disables automatic
    /// checkpoints (the creation-time base checkpoint is still written).
    pub checkpoint_every: u64,
    /// Automatic retention: every time a checkpoint is written, keep only
    /// the segments anchored by the newest `n` checkpoints and remove
    /// everything older (the log-size bound for long runs). `0` — the
    /// default — never removes anything; [`Wal::prune`] remains the
    /// manual, keep-newest-only alternative. With `n ≥ 1` recovery from
    /// any retained checkpoint still works: segments at or after the
    /// oldest retained checkpoint's segment are never touched.
    pub keep_checkpoints: usize,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 64 * 1024,
            group_commit: 8,
            checkpoint_every: 256,
            keep_checkpoints: 0,
        }
    }
}

impl WalConfig {
    /// This config with automatic retention of the newest `n` checkpoints
    /// (see [`keep_checkpoints`](WalConfig::keep_checkpoints)).
    pub fn retain_checkpoints(mut self, n: usize) -> Self {
        self.keep_checkpoints = n;
        self
    }
}

/// Counters describing what a [`Wal`] has written, for run reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WalSummary {
    /// Records appended (step batches + commits + checkpoints).
    pub records: u64,
    /// Frame bytes appended (excludes segment magic).
    pub bytes: u64,
    /// Store syncs issued.
    pub syncs: u64,
    /// Segments opened.
    pub segments: u64,
    /// Checkpoint records written (including the creation-time base).
    pub checkpoints: u64,
    /// Contiguous-stamp watermark reached.
    pub watermark: u64,
    /// Whether a store error stopped logging before the run ended.
    pub failed: bool,
}

/// Tracks the contiguous-stamp watermark over an out-of-order stamp feed.
///
/// Workers append their batches after dropping the engine lock, so the
/// byte order of batches across workers is arbitrary even though stamps
/// are dense. The watermark is the first stamp not yet seen: everything
/// below it is in the log with no gaps.
#[derive(Clone, Debug)]
pub struct WatermarkTracker {
    next: u64,
    parked: BinaryHeap<Reverse<u64>>,
}

impl WatermarkTracker {
    /// A tracker whose watermark starts at `base` (first expected stamp).
    pub fn new(base: u64) -> Self {
        WatermarkTracker {
            next: base,
            parked: BinaryHeap::new(),
        }
    }

    /// Records `stamp` as seen; stamps below the watermark are ignored.
    pub fn record(&mut self, stamp: u64) {
        if stamp < self.next {
            return;
        }
        self.parked.push(Reverse(stamp));
        while self.parked.peek() == Some(&Reverse(self.next)) {
            self.parked.pop();
            self.next += 1;
        }
    }

    /// One past the largest stamp below which every stamp has been seen.
    pub fn watermark(&self) -> u64 {
        self.next
    }
}

struct WalCore {
    store: Box<dyn Store>,
    config: WalConfig,
    current_segment: u64,
    current_len: usize,
    /// Records appended since the last sync (group-commit counter).
    unsynced: usize,
    tracker: WatermarkTracker,
    /// Stamped steps at or above the watermark, not yet folded into the
    /// checkpoint replica. Bounded by the out-of-order overhang.
    retained: BTreeMap<u64, ScheduledStep>,
    /// Replica of the replayed run at the watermark.
    state: StructuralState,
    locks: Vec<(EntityId, TxId, LockMode)>,
    /// Commit records whose `required_watermark` is still ahead.
    pending_commits: BinaryHeap<Reverse<(u64, TxId)>>,
    /// Commit records durable at the current watermark.
    durable_commits: u64,
    steps_since_checkpoint: u64,
    /// Segment holding the newest checkpoint (pruning keeps it and later).
    checkpoint_segment: u64,
    /// Segments holding the newest checkpoints, oldest first (bounded to
    /// [`WalConfig::keep_checkpoints`] when retention is on; the
    /// retention boundary is the front).
    checkpoint_segments: std::collections::VecDeque<u64>,
    stats: WalSummary,
}

/// A live write-ahead log. Shared across worker threads by reference;
/// all appends serialise on an internal mutex (they are off the hot path:
/// the runtime appends after releasing the engine lock).
pub struct Wal {
    core: Mutex<WalCore>,
    failed: AtomicBool,
}

impl Wal {
    /// Creates a log in an empty `store`, writing and syncing the segment
    /// magic and a base checkpoint of the initial state `g0` — recovery
    /// needs at least that much to exist. Fails with
    /// [`WalError::LogNotEmpty`] if the store already holds segments.
    pub fn create(
        store: Box<dyn Store>,
        config: WalConfig,
        g0: &StructuralState,
    ) -> Result<Wal, WalError> {
        let mut core = WalCore {
            store,
            config,
            current_segment: 0,
            current_len: 0,
            unsynced: 0,
            tracker: WatermarkTracker::new(0),
            retained: BTreeMap::new(),
            state: g0.clone(),
            locks: Vec::new(),
            pending_commits: BinaryHeap::new(),
            durable_commits: 0,
            steps_since_checkpoint: 0,
            checkpoint_segment: 0,
            checkpoint_segments: std::collections::VecDeque::new(),
            stats: WalSummary::default(),
        };
        if !core.store.list()?.is_empty() {
            return Err(WalError::LogNotEmpty);
        }
        core.store.open_segment(0)?;
        core.stats.segments = 1;
        core.store.append(SEGMENT_MAGIC)?;
        core.current_len = SEGMENT_MAGIC.len();
        core.write_checkpoint()?;
        Ok(Wal {
            core: Mutex::new(core),
            failed: AtomicBool::new(false),
        })
    }

    /// Whether a store error has permanently stopped this log.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Relaxed)
    }

    /// The contiguous-stamp watermark: every step below it is appended.
    pub fn watermark(&self) -> u64 {
        self.core.lock().expect("wal lock").tracker.watermark()
    }

    /// Counters for the run report (watermark and failure flag included).
    pub fn summary(&self) -> WalSummary {
        let core = self.core.lock().expect("wal lock");
        let mut s = core.stats;
        s.watermark = core.tracker.watermark();
        s.failed = self.is_failed();
        s
    }

    /// Appends a batch of stamped steps (one group-commit unit), folding
    /// newly contiguous steps into the checkpoint replica and emitting an
    /// automatic checkpoint when one is due.
    pub fn append_steps(&self, entries: &[(u64, ScheduledStep)]) -> Result<(), WalError> {
        if entries.is_empty() {
            return Ok(());
        }
        self.with_core(|core| {
            core.append_record(&Record::Steps(entries.to_vec()))?;
            for &(stamp, step) in entries {
                core.tracker.record(stamp);
                core.retained.insert(stamp, step);
            }
            core.fold_to_watermark();
            core.maybe_sync()?;
            core.maybe_checkpoint()
        })
    }

    /// Appends a commit record for `tx`, durable once the watermark
    /// reaches `required_watermark`.
    pub fn append_commit(&self, tx: TxId, required_watermark: u64) -> Result<(), WalError> {
        self.with_core(|core| {
            core.append_record(&Record::Commit {
                tx,
                required_watermark,
            })?;
            core.pending_commits.push(Reverse((required_watermark, tx)));
            core.drain_durable_commits();
            core.maybe_sync()
        })
    }

    /// Syncs any unsynced records — the end-of-run barrier that makes the
    /// final group durable.
    pub fn flush(&self) -> Result<(), WalError> {
        self.with_core(|core| {
            if core.unsynced > 0 {
                core.sync()?;
            }
            Ok(())
        })
    }

    /// Forces a checkpoint now (regardless of `checkpoint_every`).
    pub fn checkpoint(&self) -> Result<(), WalError> {
        self.with_core(|core| core.write_checkpoint())
    }

    /// Removes segments wholly before the newest checkpoint's segment;
    /// returns how many were deleted. Recovery only needs the checkpoint
    /// and the tail after it.
    pub fn prune(&self) -> Result<u64, WalError> {
        self.with_core(|core| {
            let boundary = core.checkpoint_segment;
            let mut removed = 0;
            for index in core.store.list()? {
                if index < boundary {
                    core.store.remove(index)?;
                    removed += 1;
                }
            }
            Ok(removed)
        })
    }

    fn with_core<R>(
        &self,
        f: impl FnOnce(&mut WalCore) -> Result<R, WalError>,
    ) -> Result<R, WalError> {
        if self.is_failed() {
            return Err(WalError::Crashed);
        }
        let mut core = self.core.lock().expect("wal lock");
        let result = f(&mut core);
        if result.is_err() {
            self.failed.store(true, Ordering::Relaxed);
        }
        result
    }
}

impl WalCore {
    fn append_record(&mut self, record: &Record) -> Result<(), WalError> {
        let mut buf = Vec::new();
        let len = encode_frame(&mut buf, record);
        self.store.append(&buf)?;
        self.current_len += len;
        self.unsynced += 1;
        self.stats.records += 1;
        self.stats.bytes += len as u64;
        if self.current_len >= self.config.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Sync-before-rotate: the outgoing segment is made fully durable
    /// before the next one exists, so non-current segments never tear.
    fn rotate(&mut self) -> Result<(), WalError> {
        self.sync()?;
        self.current_segment += 1;
        self.store.open_segment(self.current_segment)?;
        self.stats.segments += 1;
        self.store.append(SEGMENT_MAGIC)?;
        self.current_len = SEGMENT_MAGIC.len();
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.store.sync()?;
        self.unsynced = 0;
        self.stats.syncs += 1;
        Ok(())
    }

    fn maybe_sync(&mut self) -> Result<(), WalError> {
        if self.unsynced >= self.config.group_commit.max(1) {
            self.sync()?;
        }
        Ok(())
    }

    /// Folds retained steps below the watermark into the state replica.
    fn fold_to_watermark(&mut self) {
        let watermark = self.tracker.watermark();
        while let Some(entry) = self.retained.first_entry() {
            if *entry.key() >= watermark {
                break;
            }
            let step = entry.remove();
            replay_step(&mut self.state, &mut self.locks, &step);
            self.steps_since_checkpoint += 1;
        }
        self.drain_durable_commits();
    }

    fn drain_durable_commits(&mut self) {
        let watermark = self.tracker.watermark();
        while let Some(&Reverse((required, _))) = self.pending_commits.peek() {
            if required > watermark {
                break;
            }
            self.pending_commits.pop();
            self.durable_commits += 1;
        }
    }

    fn maybe_checkpoint(&mut self) -> Result<(), WalError> {
        if self.config.checkpoint_every > 0
            && self.steps_since_checkpoint >= self.config.checkpoint_every
        {
            self.write_checkpoint()?;
        }
        Ok(())
    }

    /// Writes and syncs a checkpoint of the replica at the watermark.
    fn write_checkpoint(&mut self) -> Result<(), WalError> {
        let record = Record::Checkpoint(Checkpoint {
            watermark: self.tracker.watermark(),
            committed: self.durable_commits,
            state: self.state.clone(),
            locks: self.locks.clone(),
        });
        // The record lands in the segment current *now*; appending it may
        // rotate afterwards, and pruning must keep the segment that holds
        // the checkpoint, not the fresh one.
        let segment_holding_checkpoint = self.current_segment;
        self.append_record(&record)?;
        self.sync()?;
        self.stats.checkpoints += 1;
        self.steps_since_checkpoint = 0;
        self.checkpoint_segment = segment_holding_checkpoint;
        self.checkpoint_segments
            .push_back(segment_holding_checkpoint);
        self.retain()
    }

    /// Automatic retention ([`WalConfig::keep_checkpoints`]): forget
    /// checkpoint anchors beyond the newest `n` and remove every segment
    /// wholly before the oldest retained one. Consecutive checkpoints can
    /// share a segment, so the boundary only advances when the oldest
    /// retained anchor moves to a later segment.
    fn retain(&mut self) -> Result<(), WalError> {
        let keep = self.config.keep_checkpoints;
        if keep == 0 {
            return Ok(());
        }
        while self.checkpoint_segments.len() > keep {
            self.checkpoint_segments.pop_front();
        }
        let boundary = *self
            .checkpoint_segments
            .front()
            .expect("a checkpoint was just pushed");
        for index in self.store.list()? {
            if index < boundary {
                self.store.remove(index)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{decode_frame, FrameOutcome};
    use crate::store::{FaultyStore, MemStore, SharedMemStore};
    use slp_core::Step;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    fn step(tx: u32, s: Step) -> ScheduledStep {
        ScheduledStep::new(TxId(tx), s)
    }

    /// Decodes all records in a store's concatenated segments.
    fn records_in(store: &MemStore) -> Vec<Record> {
        let mut out = Vec::new();
        for index in store.list().unwrap() {
            let data = store.read(index).unwrap();
            assert_eq!(&data[..8], SEGMENT_MAGIC, "segment {index} magic");
            let mut rest = &data[8..];
            loop {
                match decode_frame(rest) {
                    FrameOutcome::Record(r, tail) => {
                        out.push(r);
                        rest = tail;
                    }
                    FrameOutcome::End => break,
                    FrameOutcome::Torn(reason) => panic!("torn log: {reason}"),
                }
            }
        }
        out
    }

    #[test]
    fn create_writes_a_synced_base_checkpoint() {
        let handle = SharedMemStore::new();
        let g0 = StructuralState::from_entities([e(1), e(2)]);
        let wal = Wal::create(Box::new(handle.clone()), WalConfig::default(), &g0).unwrap();
        // Even an immediate crash (nothing volatile survives) leaves a
        // well-formed log holding the base checkpoint.
        let crashed = handle.snapshot().crashed(false);
        let records = records_in(&crashed);
        assert_eq!(records.len(), 1);
        let Record::Checkpoint(cp) = &records[0] else {
            panic!("expected checkpoint, got {:?}", records[0]);
        };
        assert_eq!(cp.watermark, 0);
        assert_eq!(cp.committed, 0);
        assert_eq!(cp.state, g0);
        assert!(cp.locks.is_empty());
        let summary = wal.summary();
        assert_eq!(summary.checkpoints, 1);
        assert_eq!(summary.segments, 1);
        assert!(!summary.failed);
    }

    #[test]
    fn create_refuses_a_nonempty_store() {
        let mut store = MemStore::new();
        store.open_segment(0).unwrap();
        assert_eq!(
            Wal::create(
                Box::new(store),
                WalConfig::default(),
                &StructuralState::empty()
            )
            .err(),
            Some(WalError::LogNotEmpty)
        );
    }

    #[test]
    fn group_commit_syncs_every_n_records() {
        let handle = SharedMemStore::new();
        let config = WalConfig {
            group_commit: 2,
            checkpoint_every: 0,
            ..WalConfig::default()
        };
        let wal = Wal::create(Box::new(handle.clone()), config, &StructuralState::empty()).unwrap();
        let synced_at_create = wal.summary().syncs;
        wal.append_steps(&[(0, step(1, Step::lock_exclusive(e(0))))])
            .unwrap();
        assert_eq!(
            wal.summary().syncs,
            synced_at_create,
            "first record unsynced"
        );
        // The unsynced record is volatile until the group boundary.
        assert_eq!(records_in(&handle.snapshot().crashed(false)).len(), 1);
        wal.append_steps(&[(1, step(1, Step::insert(e(0))))])
            .unwrap();
        assert_eq!(
            wal.summary().syncs,
            synced_at_create + 1,
            "group of 2 syncs"
        );
        assert_eq!(records_in(&handle.snapshot().crashed(false)).len(), 3);
        // flush() syncs a partial group.
        wal.append_steps(&[(2, step(1, Step::unlock_exclusive(e(0))))])
            .unwrap();
        wal.flush().unwrap();
        assert_eq!(records_in(&handle.snapshot().crashed(false)).len(), 4);
    }

    #[test]
    fn rotation_syncs_the_outgoing_segment() {
        let handle = SharedMemStore::new();
        let config = WalConfig {
            segment_bytes: 64,
            group_commit: 1000, // group commit never triggers a sync here
            checkpoint_every: 0,
            ..WalConfig::default()
        };
        let wal = Wal::create(Box::new(handle.clone()), config, &StructuralState::empty()).unwrap();
        for i in 0..40u64 {
            wal.append_steps(&[(i, step(1, Step::lock_shared(e(i as u32))))])
                .unwrap();
        }
        let summary = wal.summary();
        assert!(summary.segments >= 2, "expected rotation, got {summary:?}");
        // Every non-current segment survives a crash in full.
        let snapshot = handle.snapshot();
        let crashed = snapshot.crashed(false);
        let segments = snapshot.list().unwrap();
        for &index in &segments[..segments.len() - 1] {
            assert_eq!(
                crashed.read(index).unwrap(),
                snapshot.read(index).unwrap(),
                "segment {index} must be fully durable before rotation"
            );
        }
    }

    #[test]
    fn watermark_tracks_contiguity_across_out_of_order_batches() {
        let tracker = {
            let mut t = WatermarkTracker::new(0);
            t.record(0);
            t.record(2);
            t.record(3);
            assert_eq!(t.watermark(), 1, "gap at 1 holds the watermark");
            t.record(1);
            t
        };
        assert_eq!(tracker.watermark(), 4);

        let wal = Wal::create(
            Box::new(MemStore::new()),
            WalConfig {
                checkpoint_every: 0,
                ..WalConfig::default()
            },
            &StructuralState::empty(),
        )
        .unwrap();
        // Worker B's batch (stamps 2,3) lands before worker A's (0,1).
        wal.append_steps(&[
            (2, step(2, Step::insert(e(2)))),
            (3, step(2, Step::read(e(2)))),
        ])
        .unwrap();
        assert_eq!(wal.watermark(), 0);
        wal.append_steps(&[
            (0, step(1, Step::insert(e(1)))),
            (1, step(1, Step::read(e(1)))),
        ])
        .unwrap();
        assert_eq!(wal.watermark(), 4);
    }

    #[test]
    fn automatic_checkpoint_captures_replayed_state_and_locks() {
        let handle = SharedMemStore::new();
        let config = WalConfig {
            group_commit: 1,
            checkpoint_every: 3,
            ..WalConfig::default()
        };
        let wal = Wal::create(Box::new(handle.clone()), config, &StructuralState::empty()).unwrap();
        wal.append_steps(&[
            (0, step(1, Step::lock_exclusive(e(7)))),
            (1, step(1, Step::insert(e(7)))),
            (2, step(1, Step::lock_shared(e(9)))),
        ])
        .unwrap();
        wal.append_commit(t(1), 3).unwrap();
        let records = records_in(&handle.snapshot());
        let checkpoints: Vec<&Checkpoint> = records
            .iter()
            .filter_map(|r| match r {
                Record::Checkpoint(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(checkpoints.len(), 2, "base + one automatic");
        let cp = checkpoints[1];
        assert_eq!(cp.watermark, 3);
        assert_eq!(cp.state, StructuralState::from_entities([e(7)]));
        assert_eq!(
            cp.locks,
            vec![
                (e(7), t(1), LockMode::Exclusive),
                (e(9), t(1), LockMode::Shared)
            ]
        );
        // The commit landed after the checkpoint; its durability is
        // tracked for the *next* checkpoint.
        assert_eq!(cp.committed, 0);
        wal.append_steps(&[
            (3, step(1, Step::unlock_exclusive(e(7)))),
            (4, step(1, Step::unlock_shared(e(9)))),
            (5, step(2, Step::read(e(7)))),
        ])
        .unwrap();
        let records = records_in(&handle.snapshot());
        let last = records
            .iter()
            .rev()
            .find_map(|r| match r {
                Record::Checkpoint(c) => Some(c),
                _ => None,
            })
            .unwrap();
        assert_eq!(last.watermark, 6);
        assert_eq!(last.committed, 1);
        assert!(last.locks.is_empty());
    }

    #[test]
    fn prune_drops_segments_before_the_newest_checkpoint() {
        let handle = SharedMemStore::new();
        let config = WalConfig {
            segment_bytes: 96,
            group_commit: 1,
            checkpoint_every: 0,
            ..WalConfig::default()
        };
        let wal = Wal::create(Box::new(handle.clone()), config, &StructuralState::empty()).unwrap();
        for i in 0..40u64 {
            wal.append_steps(&[(i, step(1, Step::lock_shared(e(i as u32))))])
                .unwrap();
        }
        assert!(handle.snapshot().list().unwrap().len() > 2);
        wal.checkpoint().unwrap();
        // Writing the checkpoint may itself rotate; count segments after.
        let segments_before = handle.snapshot().list().unwrap().len();
        let removed = wal.prune().unwrap();
        assert!(removed > 0);
        let remaining = handle.snapshot().list().unwrap();
        assert_eq!(remaining.len(), segments_before - removed as usize);
        // The newest checkpoint's segment survives.
        assert!(records_in_tail_has_checkpoint(
            &handle.snapshot(),
            &remaining
        ));
    }

    #[test]
    fn retention_keeps_newest_checkpoints_and_recovery_still_works() {
        let handle = SharedMemStore::new();
        let config = WalConfig {
            segment_bytes: 96,
            group_commit: 1,
            checkpoint_every: 4,
            ..WalConfig::default()
        }
        .retain_checkpoints(2);
        let wal = Wal::create(Box::new(handle.clone()), config, &StructuralState::empty()).unwrap();
        for i in 0..60u64 {
            wal.append_steps(&[(i, step(1, Step::insert(e(i as u32))))])
                .unwrap();
        }
        wal.flush().unwrap();
        let store = handle.snapshot();
        let segments = store.list().unwrap();
        // Checkpoint-time retention removed the oldest segments by
        // itself (no prune() call anywhere in this test)...
        assert!(segments[0] > 0, "retention must drop the oldest segments");
        // ...and the surviving tail recovers from the newest retained
        // checkpoint all the way to the full watermark.
        let newest = crate::recover(&store, crate::RecoveryMode::Newest).unwrap();
        assert_eq!(newest.watermark, 60);
        assert!(newest.base_stamp > 0, "seeded from a mid-run checkpoint");
        // Both retained checkpoints are usable: oldest-mode recovery
        // seeds earlier and replays a longer tail to the same state.
        let oldest = crate::recover(&store, crate::RecoveryMode::Oldest).unwrap();
        assert_eq!(oldest.watermark, 60);
        assert!(oldest.base_stamp < newest.base_stamp);
        assert_eq!(oldest.state, newest.state);
    }

    fn records_in_tail_has_checkpoint(store: &MemStore, segments: &[u64]) -> bool {
        segments.iter().any(|&index| {
            let data = store.read(index).unwrap();
            let mut rest = &data[8..];
            loop {
                match decode_frame(rest) {
                    FrameOutcome::Record(Record::Checkpoint(_), _) => return true,
                    FrameOutcome::Record(_, tail) => rest = tail,
                    _ => return false,
                }
            }
        })
    }

    #[test]
    fn store_failure_latches_and_later_calls_are_rejected_cheaply() {
        let handle = SharedMemStore::new();
        let faulty = FaultyStore::new(handle.clone()).fail_on_sync(1);
        let config = WalConfig {
            group_commit: 1,
            checkpoint_every: 0,
            ..WalConfig::default()
        };
        let wal = Wal::create(Box::new(faulty), config, &StructuralState::empty()).unwrap();
        assert_eq!(
            wal.append_steps(&[(0, step(1, Step::read(e(0))))]),
            Err(WalError::Crashed)
        );
        assert!(wal.is_failed());
        assert!(wal.summary().failed);
        assert_eq!(
            wal.append_commit(t(1), 0),
            Err(WalError::Crashed),
            "failed log rejects everything"
        );
        assert_eq!(wal.flush(), Err(WalError::Crashed));
    }

    #[test]
    fn empty_step_batches_are_not_framed() {
        let handle = SharedMemStore::new();
        let wal = Wal::create(
            Box::new(handle.clone()),
            WalConfig::default(),
            &StructuralState::empty(),
        )
        .unwrap();
        let before = wal.summary().records;
        wal.append_steps(&[]).unwrap();
        assert_eq!(wal.summary().records, before);
    }
}
