//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the frame
//! checksum of the write-ahead log.
//!
//! Implemented here rather than pulled in as a dependency because the
//! build environment is crates.io-free (see the workspace manifest); a
//! 256-entry table built in a `const fn` keeps the per-byte cost to one
//! lookup + xor, which is far below the fsync cost it guards.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"\0"), 0xD202_EF8D);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"write-ahead log frame payload".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
