//! Durability for the transaction runtime: a segmented write-ahead log
//! with group commit, fuzzy checkpoints, and torn-tail-tolerant crash
//! recovery.
//!
//! # What is logged
//!
//! The runtime's lock service produces a totally ordered trace of granted
//! steps (each carrying a dense sequence stamp — see
//! `slp_runtime::LockService`). Durability is a replica of that trace:
//!
//! - [`frame::Record::Steps`] — a group-commit batch of stamped steps;
//! - [`frame::Record::Commit`] — a transaction finished, durable once the
//!   contiguous-stamp watermark covers its last step;
//! - [`frame::Record::Checkpoint`] — the replayed [`StructuralState`] plus
//!   held locks at a watermark, so recovery replays only the tail.
//!
//! Records are framed with a length + CRC-32 header ([`frame`]), appended
//! to numbered segment files ([`store`]), and fsynced at configurable
//! group boundaries ([`wal`]).
//!
//! # Crash recovery
//!
//! [`recover::recover`] rebuilds state from whatever bytes survived: it
//! parses frames until the first torn or corrupt one, truncates there
//! (**never** panics on garbage), seeds from a surviving checkpoint, and
//! replays the contiguous stamped tail. Because conflict-serializability
//! is prefix-closed, any contiguous stamp-prefix of a safe run is itself
//! a legal, proper, serializable run — recovery therefore lands on a
//! prefix-consistent execution no matter where the crash cut the log. The
//! crash-point suites in `slp-runtime` sweep every byte prefix and a
//! property-driven set of mid-run faults to hold that line.
//!
//! [`StructuralState`]: slp_core::StructuralState

#![warn(missing_docs)]

use std::fmt;

mod crc;
pub mod frame;
pub mod recover;
pub mod store;
pub mod wal;

pub use crc::crc32;
pub use frame::{Checkpoint, Record, TornReason, SEGMENT_MAGIC};
pub use recover::{recover, RecoverError, Recovered, RecoveryMode, Truncation};
pub use store::{DirStore, FaultyStore, MemStore, SharedMemStore, Store};
pub use wal::{Wal, WalConfig, WalSummary, WatermarkTracker};

/// Why a log operation failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalError {
    /// The backing store reported an I/O failure.
    Io(String),
    /// The store (or an injected fault) simulated a crash: the write may
    /// be partially applied and nothing later will succeed.
    Crashed,
    /// [`Wal::create`] was given a store that already holds segments; a
    /// log is created exactly once per run (recover from it instead).
    LogNotEmpty,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "log i/o error: {e}"),
            WalError::Crashed => f.write_str("log store crashed"),
            WalError::LogNotEmpty => f.write_str("store already contains a log"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e.to_string())
    }
}
