//! Property tests for the snapshot visibility rule: what a read observes
//! is a pure function of `(snapshot, status table)` — never of timing,
//! never of unresolved writers — and a status flip exposes *all* of a
//! writer's versions atomically.

use proptest::prelude::*;
use slp_core::{EntityId, TxId};
use slp_mvcc::{MvccStore, ObservedRead, Snapshot, TxStatus, TxStatusTable, VisibilityRule};

fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Outcome {
    InProgress,
    Aborted,
    Committed(u64),
}

/// One write or delete in entity-chain install order.
#[derive(Clone, Copy, Debug)]
struct Op {
    tx: TxId,
    entity: EntityId,
    stamp: u64,
    delete: bool,
}

/// A random history: per-writer targets installed in stamp order, commit
/// stamps issued in install order (as the commit pipeline guarantees),
/// outcomes mixed.
struct History {
    ops: Vec<Op>,
    outcomes: Vec<Outcome>, // indexed by writer id
    max_commit: u64,
}

fn random_history(seed: u64) -> History {
    let mut rng = seed.wrapping_mul(2).wrapping_add(1);
    let n_entities = 1 + (mix(&mut rng) % 4) as u32;
    let n_writers = (mix(&mut rng) % 9) as u32;
    let mut ops = Vec::new();
    let mut outcomes = Vec::new();
    let mut stamp = 0;
    let mut commit_clock = 0;
    for w in 0..n_writers {
        let targets = 1 + (mix(&mut rng) % 2) as u32;
        for _ in 0..targets {
            ops.push(Op {
                tx: TxId(w),
                entity: EntityId(mix(&mut rng) as u32 % n_entities),
                stamp,
                delete: mix(&mut rng).is_multiple_of(5),
            });
            stamp += 1;
        }
        outcomes.push(match mix(&mut rng) % 3 {
            0 => Outcome::InProgress,
            1 => Outcome::Aborted,
            _ => {
                commit_clock += 1;
                Outcome::Committed(commit_clock)
            }
        });
    }
    History {
        ops,
        outcomes,
        max_commit: commit_clock,
    }
}

fn build(h: &History) -> (MvccStore, TxStatusTable) {
    let store = MvccStore::new();
    let tst = TxStatusTable::new();
    for op in &h.ops {
        if op.delete {
            store.delete(op.entity, op.tx, op.stamp);
        } else {
            store.install(op.entity, op.tx, op.stamp);
        }
    }
    for (w, o) in h.outcomes.iter().enumerate() {
        match o {
            Outcome::InProgress => {}
            Outcome::Aborted => assert!(tst.abort(TxId(w as u32))),
            Outcome::Committed(c) => assert!(tst.commit(TxId(w as u32), *c)),
        }
    }
    (store, tst)
}

/// Independent reimplementation of the visibility rule over the abstract
/// history: simulate the chain per entity, then scan newest-first for
/// the first version whose writer committed at or below the read stamp.
fn model_read(
    h: &History,
    outcomes: &[Outcome],
    entity: EntityId,
    read_stamp: u64,
) -> ObservedRead {
    let visible = |tx: TxId| match outcomes[tx.0 as usize] {
        Outcome::Committed(c) => c <= read_stamp,
        _ => false,
    };
    // (xmin, stamp, xmax)
    type ModelVersion = (TxId, u64, Option<(TxId, u64)>);
    let mut chain: Vec<ModelVersion> = Vec::new();
    for op in h.ops.iter().filter(|o| o.entity == entity) {
        if op.delete {
            if chain.is_empty() {
                chain.push((op.tx, op.stamp, Some((op.tx, op.stamp))));
            } else {
                chain.last_mut().expect("nonempty").2 = Some((op.tx, op.stamp));
            }
        } else {
            chain.push((op.tx, op.stamp, None));
        }
    }
    for &(xmin, stamp, xmax) in chain.iter().rev() {
        if !visible(xmin) {
            continue;
        }
        if let Some((d, dstamp)) = xmax {
            if visible(d) {
                return ObservedRead {
                    observed: Some(d),
                    pivot: Some(dstamp),
                };
            }
        }
        return ObservedRead {
            observed: Some(xmin),
            pivot: Some(stamp),
        };
    }
    ObservedRead::INITIAL
}

fn snap(read_stamp: u64) -> Snapshot {
    Snapshot {
        read_stamp,
        in_progress: Vec::new(),
        base_stamp: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The store's answer equals the model's at every read stamp — the
    /// observed version is a function of (snapshot, status table) only —
    /// and whatever is observed is a committed writer within the
    /// snapshot's horizon: never aborted, never in-progress.
    #[test]
    fn visibility_is_a_function_of_snapshot_and_status(seed in 0u64..300) {
        let h = random_history(seed);
        let (store, tst) = build(&h);
        let entities: Vec<EntityId> =
            (0..4).map(EntityId).collect();
        for rs in 0..=h.max_commit + 1 {
            for &e in &entities {
                let got = store.read(e, &snap(rs), &tst, VisibilityRule::Correct);
                prop_assert_eq!(got, model_read(&h, &h.outcomes, e, rs));
                if let Some(w) = got.observed {
                    match tst.status(w) {
                        TxStatus::Committed(c) => prop_assert!(c <= rs),
                        s => prop_assert!(false, "observed unresolved writer {:?}", s),
                    }
                }
            }
        }
    }

    /// The commit flip is atomic: before it, none of the writer's
    /// versions are visible anywhere; after it, *every* entity the
    /// writer touched reflects the update at read stamps covering the
    /// flip — and reads below the flip stamp are bit-for-bit unchanged.
    #[test]
    fn commit_flip_exposes_all_updates_atomically(seed in 0u64..300) {
        let h = random_history(seed);
        let (store, tst) = build(&h);
        let Some(w) = h
            .outcomes
            .iter()
            .position(|o| *o == Outcome::InProgress)
            .map(|i| TxId(i as u32))
        else {
            continue; // no in-progress writer in this history
        };
        let flip_stamp = h.max_commit + 1;
        let entities: Vec<EntityId> = (0..4).map(EntityId).collect();
        let before: Vec<ObservedRead> = entities
            .iter()
            .map(|&e| store.read(e, &snap(flip_stamp), &tst, VisibilityRule::Correct))
            .collect();
        for r in &before {
            prop_assert!(r.observed != Some(w), "in-progress writer visible");
        }
        prop_assert!(tst.commit(w, flip_stamp));
        // Outcomes with the flip applied drive the model.
        let mut outcomes = h.outcomes.clone();
        outcomes[w.0 as usize] = Outcome::Committed(flip_stamp);
        for &e in &entities {
            let after = store.read(e, &snap(flip_stamp), &tst, VisibilityRule::Correct);
            prop_assert_eq!(after, model_read(&h, &outcomes, e, flip_stamp));
            // Below the flip stamp nothing changed.
            prop_assert_eq!(
                store.read(e, &snap(flip_stamp - 1), &tst, VisibilityRule::Correct),
                model_read(&h, &h.outcomes, e, flip_stamp - 1)
            );
        }
    }
}
