//! The transaction status table: one atomic word per transaction id.

use slp_core::TxId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A transaction's lifecycle state as recorded in the status table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxStatus {
    /// Begun (or never seen) and not yet resolved. Its versions are
    /// invisible to every snapshot.
    InProgress,
    /// Committed at the carried commit stamp: visible to snapshots whose
    /// `read_stamp` is at or above it.
    Committed(u64),
    /// Aborted: its versions are invisible forever — no rollback needed.
    Aborted,
}

/// Word encoding: two tag bits, stamp in the upper 62.
const TAG_MASK: u64 = 0b11;
const TAG_IN_PROGRESS: u64 = 0b00; // the default (zeroed) state
const TAG_COMMITTED: u64 = 0b01;
const TAG_ABORTED: u64 = 0b10;

/// Slots per lazily-allocated chunk.
const CHUNK: usize = 1 << 12;
/// Maximum chunks — caps the table at ~16M transaction ids, far above any
/// run this workspace performs.
const CHUNKS: usize = 1 << 12;

/// The **sole commit authority** for snapshot visibility: a lock-free
/// table with one atomic `u64` per transaction id, `InProgress` (the
/// zeroed default) until a single compare-and-swap flips it to
/// `Committed(stamp)` or `Aborted`. Readers never lock; writers never
/// revisit their versions at commit — the flip makes every version the
/// writer installed visible (or permanently invisible) atomically.
///
/// Storage is chunked: a fixed spine of [`OnceLock`] chunks, each
/// allocated on first touch, so the table grows lock-free without moving
/// existing slots (no `unsafe`, no RCU).
pub struct TxStatusTable {
    chunks: Box<[OnceLock<Box<[AtomicU64]>>]>,
}

impl Default for TxStatusTable {
    fn default() -> Self {
        Self::new()
    }
}

impl TxStatusTable {
    /// An empty table: every id reads `InProgress`.
    pub fn new() -> Self {
        let mut spine = Vec::with_capacity(CHUNKS);
        spine.resize_with(CHUNKS, OnceLock::new);
        TxStatusTable {
            chunks: spine.into_boxed_slice(),
        }
    }

    fn slot(&self, tx: TxId) -> &AtomicU64 {
        let idx = tx.0 as usize;
        let chunk = idx / CHUNK;
        assert!(chunk < CHUNKS, "transaction id {tx} beyond status table");
        let slab = self.chunks[chunk].get_or_init(|| {
            let mut v = Vec::with_capacity(CHUNK);
            v.resize_with(CHUNK, AtomicU64::default);
            v.into_boxed_slice()
        });
        &slab[idx % CHUNK]
    }

    /// The transaction's current status.
    pub fn status(&self, tx: TxId) -> TxStatus {
        let w = self.slot(tx).load(Ordering::Acquire);
        match w & TAG_MASK {
            TAG_COMMITTED => TxStatus::Committed(w >> 2),
            TAG_ABORTED => TxStatus::Aborted,
            _ => TxStatus::InProgress,
        }
    }

    /// Flips `tx` to `Committed(stamp)`. Returns `false` when the slot
    /// was already resolved (the flip did not happen).
    pub fn commit(&self, tx: TxId, stamp: u64) -> bool {
        // Release-mode check: a stamp at 2^62 would shift into the tag
        // bits and could masquerade as a different status, silently
        // corrupting visibility for every reader of this slot.
        assert!(stamp < 1 << 62, "commit stamp overflows the tag encoding");
        self.slot(tx)
            .compare_exchange(
                TAG_IN_PROGRESS,
                (stamp << 2) | TAG_COMMITTED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// Flips `tx` to `Aborted`. Returns `false` when already resolved.
    pub fn abort(&self, tx: TxId) -> bool {
        self.slot(tx)
            .compare_exchange(
                TAG_IN_PROGRESS,
                TAG_ABORTED,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_in_progress_and_flips_are_final() {
        let tst = TxStatusTable::new();
        let t = TxId(7);
        assert_eq!(tst.status(t), TxStatus::InProgress);
        assert!(tst.commit(t, 42));
        assert_eq!(tst.status(t), TxStatus::Committed(42));
        assert!(!tst.abort(t), "resolved slots never flip again");
        assert!(!tst.commit(t, 43));
        assert_eq!(tst.status(t), TxStatus::Committed(42));

        let a = TxId(8);
        assert!(tst.abort(a));
        assert_eq!(tst.status(a), TxStatus::Aborted);
        assert!(!tst.commit(a, 1));
    }

    #[test]
    fn ids_across_chunk_boundaries_are_independent() {
        let tst = TxStatusTable::new();
        let lo = TxId(3);
        let hi = TxId((CHUNK as u32) * 3 + 5);
        assert!(tst.commit(hi, 9));
        assert_eq!(tst.status(lo), TxStatus::InProgress);
        assert_eq!(tst.status(hi), TxStatus::Committed(9));
    }
}
