//! # slp-mvcc — multi-version entity store for snapshot reads
//!
//! Read-only jobs should never block writers — or be blocked by them. The
//! paper's locking policies serialize *writers*; this crate adds the
//! versioned side that lets readers bypass the lock service entirely:
//!
//! * [`TxStatusTable`] — a lock-free status slot per transaction id:
//!   `InProgress → Committed(stamp) | Aborted`, flipped by one atomic
//!   compare-and-swap. The flip **is** the commit: every version a writer
//!   installed becomes visible to later snapshots at that instant,
//!   atomically, with no commit-time write-backs to the versions.
//! * [`MvccStore`] — per-entity version chains. A writer installs a
//!   [`Version`] (`xmin` = its id, `stamp` = the trace stamp of the
//!   installing write) at lock-grant time; a delete sets the newest
//!   version's `xmax`. Versions of aborted writers are never rolled
//!   back — the status table makes them permanently invisible.
//! * [`Snapshot`] — `read_stamp` plus the writers in progress at capture.
//!   A version is visible iff its `xmin` committed at or below
//!   `read_stamp` and its `xmax` (if any) did not
//!   ([`MvccStore::read`]).
//! * [`CommitPipeline`] — issues commit stamps and defers a writer's flip
//!   until every lock-order predecessor has resolved, cascading deferred
//!   flips when their predecessors land. Early lock release (altruistic
//!   donation, DDAG crawling) makes raw commit order diverge from
//!   conflict order; the pipeline restores the invariant snapshots need:
//!   **the flipped set at any capture is a downward-closed prefix of the
//!   serialization order**, so every snapshot reads a consistent cut.
//!
//! The [`VisibilityRule::Broken`] mutant deliberately lets snapshots see
//! in-progress writers — the scripted negative control that the online
//! certifier must flag as nonserializable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;
mod store;
mod tst;

pub use pipeline::{CommitOutcome, CommitPipeline, Snapshot};
pub use store::{MvccStore, ObservedRead, Version, VisibilityRule};
pub use tst::{TxStatus, TxStatusTable};
