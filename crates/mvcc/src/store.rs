//! Per-entity version chains and the snapshot visibility rule.

use crate::pipeline::Snapshot;
use crate::tst::{TxStatus, TxStatusTable};
use slp_core::{EntityId, TxId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One installed version of an entity.
///
/// `xmin` wrote it; `xmax` (if set) deleted it. Neither resolves
/// visibility by itself — that is always a [`TxStatusTable`] lookup at
/// read time, which is what makes commit a single atomic flip and abort a
/// no-op (no rollback: an aborted `xmin`'s version is permanently
/// invisible).
#[derive(Debug)]
pub struct Version {
    /// The writer that installed this version.
    pub xmin: TxId,
    /// Trace stamp of the installing write — the *pivot* a snapshot read
    /// reports to the certifier: writers with strong stamps above it
    /// wrote versions the snapshot missed.
    pub stamp: u64,
    /// Deleter id + 1; 0 when never deleted. Paired with `xmax_stamp`,
    /// stamp written first (release on the id makes the pair coherent
    /// for lock-free readers).
    xmax_xid: AtomicU64,
    xmax_stamp: AtomicU64,
}

impl Version {
    fn new(xmin: TxId, stamp: u64) -> Self {
        Version {
            xmin,
            stamp,
            xmax_xid: AtomicU64::new(0),
            xmax_stamp: AtomicU64::new(0),
        }
    }

    /// The deleter and the delete step's stamp, if this version has been
    /// delete-marked.
    pub fn xmax(&self) -> Option<(TxId, u64)> {
        let w = self.xmax_xid.load(Ordering::Acquire);
        if w == 0 {
            None
        } else {
            Some((
                TxId((w - 1) as u32),
                self.xmax_stamp.load(Ordering::Relaxed),
            ))
        }
    }

    fn set_xmax(&self, tx: TxId, stamp: u64) {
        self.xmax_stamp.store(stamp, Ordering::Relaxed);
        self.xmax_xid.store(u64::from(tx.0) + 1, Ordering::Release);
    }
}

/// Which visibility rule [`MvccStore::read`] applies.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum VisibilityRule {
    /// The real rule: a version is visible to snapshot `S` iff its
    /// `xmin` committed at or below `S.read_stamp` and its `xmax`, if
    /// any, did not.
    #[default]
    Correct,
    /// The scripted negative control: **in-progress** writers count as
    /// visible, so snapshots dirty-read uncommitted versions. The online
    /// certifier must catch the resulting cycles.
    Broken,
}

/// What a snapshot read observed — exactly what the certifier needs to
/// order the read against the entity's writers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ObservedRead {
    /// The writer of the observed version (the deleter, when the entity
    /// was visibly deleted); `None` when the snapshot saw the initial
    /// (pre-run) state of the entity.
    pub observed: Option<TxId>,
    /// The observed version's install stamp (the delete stamp for a
    /// visibly-deleted entity); `None` for the initial state.
    pub pivot: Option<u64>,
}

impl ObservedRead {
    /// The initial (pre-run) state: no writer observed.
    pub const INITIAL: ObservedRead = ObservedRead {
        observed: None,
        pivot: None,
    };
}

/// The versioned entity store. Writers install versions at lock-grant
/// time (serialized by the engine lock they already hold); snapshot
/// readers scan chains lock-free apart from the per-chain `RwLock`
/// (readers share it — a reader never blocks a reader, and writers touch
/// it only for the push itself).
#[derive(Default)]
pub struct MvccStore {
    chains: RwLock<Vec<Arc<RwLock<Vec<Version>>>>>,
}

impl MvccStore {
    /// An empty store: every entity reads as its initial state.
    pub fn new() -> Self {
        Self::default()
    }

    fn chain(&self, entity: EntityId, create: bool) -> Option<Arc<RwLock<Vec<Version>>>> {
        let idx = entity.0 as usize;
        {
            let chains = self.chains.read().expect("chain spine poisoned");
            if let Some(c) = chains.get(idx) {
                return Some(Arc::clone(c));
            }
        }
        if !create {
            return None;
        }
        let mut chains = self.chains.write().expect("chain spine poisoned");
        if chains.len() <= idx {
            chains.resize_with(idx + 1, Arc::default);
        }
        Some(Arc::clone(&chains[idx]))
    }

    /// Installs a new version of `entity` written by `tx` at trace stamp
    /// `stamp` (insert and write are both installs — the first install of
    /// an entity is its insert).
    pub fn install(&self, entity: EntityId, tx: TxId, stamp: u64) {
        let chain = self.chain(entity, true).expect("create=true");
        chain
            .write()
            .expect("version chain poisoned")
            .push(Version::new(tx, stamp));
    }

    /// Delete-marks the newest version of `entity`. Deleting an entity
    /// that only exists pre-run installs a synthetic version carrying the
    /// tombstone, so snapshots that see the deleter committed see the
    /// entity gone while older snapshots still see the initial state.
    pub fn delete(&self, entity: EntityId, tx: TxId, stamp: u64) {
        let chain = self.chain(entity, true).expect("create=true");
        let mut chain = chain.write().expect("version chain poisoned");
        if chain.is_empty() {
            chain.push(Version::new(tx, stamp));
        }
        chain.last().expect("nonempty").set_xmax(tx, stamp);
    }

    /// Reads `entity` under `snap`: scans the chain newest-first for the
    /// first visible version and reports what was observed. Touches no
    /// lock table and no engine lock — this is the entire read path of a
    /// read-only job.
    pub fn read(
        &self,
        entity: EntityId,
        snap: &Snapshot,
        tst: &TxStatusTable,
        rule: VisibilityRule,
    ) -> ObservedRead {
        let Some(chain) = self.chain(entity, false) else {
            return ObservedRead::INITIAL;
        };
        let chain = chain.read().expect("version chain poisoned");
        for v in chain.iter().rev() {
            if !writer_visible(v.xmin, snap, tst, rule) {
                continue;
            }
            // Newest visible version; a visible tombstone means the
            // snapshot sees the entity deleted — observing the deleter.
            if let Some((d, dstamp)) = v.xmax() {
                if writer_visible(d, snap, tst, rule) {
                    return ObservedRead {
                        observed: Some(d),
                        pivot: Some(dstamp),
                    };
                }
            }
            return ObservedRead {
                observed: Some(v.xmin),
                pivot: Some(v.stamp),
            };
        }
        ObservedRead::INITIAL
    }
}

/// Whether `tx`'s effects are visible to `snap` under `rule`.
fn writer_visible(tx: TxId, snap: &Snapshot, tst: &TxStatusTable, rule: VisibilityRule) -> bool {
    match tst.status(tx) {
        TxStatus::Committed(c) => c <= snap.read_stamp,
        TxStatus::InProgress => rule == VisibilityRule::Broken,
        TxStatus::Aborted => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(read_stamp: u64) -> Snapshot {
        Snapshot {
            read_stamp,
            in_progress: Vec::new(),
            base_stamp: 0,
        }
    }

    #[test]
    fn visibility_follows_the_status_flip() {
        let store = MvccStore::new();
        let tst = TxStatusTable::new();
        let (e, w) = (EntityId(0), TxId(1));
        store.install(e, w, 10);
        let s = snap(5);
        assert_eq!(
            store.read(e, &s, &tst, VisibilityRule::Correct),
            ObservedRead::INITIAL,
            "in-progress writers are invisible"
        );
        tst.commit(w, 3);
        assert_eq!(
            store.read(e, &s, &tst, VisibilityRule::Correct),
            ObservedRead {
                observed: Some(w),
                pivot: Some(10)
            },
            "the flip alone made the version visible"
        );
        assert_eq!(
            store.read(e, &snap(2), &tst, VisibilityRule::Correct),
            ObservedRead::INITIAL,
            "older snapshots still see the initial state"
        );
    }

    #[test]
    fn aborted_writers_never_surface_and_need_no_rollback() {
        let store = MvccStore::new();
        let tst = TxStatusTable::new();
        let (e, w1, w2) = (EntityId(0), TxId(1), TxId(2));
        store.install(e, w1, 1);
        tst.commit(w1, 1);
        store.install(e, w2, 2);
        tst.abort(w2);
        let got = store.read(e, &snap(9), &tst, VisibilityRule::Correct);
        assert_eq!(got.observed, Some(w1), "aborted newest version is skipped");
    }

    #[test]
    fn visible_tombstone_reports_the_deleter() {
        let store = MvccStore::new();
        let tst = TxStatusTable::new();
        let (e, w, d) = (EntityId(0), TxId(1), TxId(2));
        store.install(e, w, 1);
        tst.commit(w, 1);
        store.delete(e, d, 5);
        assert_eq!(
            store
                .read(e, &snap(9), &tst, VisibilityRule::Correct)
                .observed,
            Some(w),
            "unresolved deleter leaves the version visible"
        );
        tst.commit(d, 2);
        assert_eq!(
            store.read(e, &snap(9), &tst, VisibilityRule::Correct),
            ObservedRead {
                observed: Some(d),
                pivot: Some(5)
            }
        );
        assert_eq!(
            store
                .read(e, &snap(1), &tst, VisibilityRule::Correct)
                .observed,
            Some(w),
            "snapshots below the deleter's stamp still see the version"
        );
    }

    #[test]
    fn broken_rule_dirty_reads_in_progress_writers() {
        let store = MvccStore::new();
        let tst = TxStatusTable::new();
        let (e, w) = (EntityId(3), TxId(4));
        store.install(e, w, 7);
        let s = snap(0);
        assert_eq!(
            store.read(e, &s, &tst, VisibilityRule::Correct),
            ObservedRead::INITIAL
        );
        assert_eq!(
            store.read(e, &s, &tst, VisibilityRule::Broken),
            ObservedRead {
                observed: Some(w),
                pivot: Some(7)
            },
            "the mutant sees uncommitted versions"
        );
    }
}
