//! Commit stamping, snapshot capture, and flip ordering.

use crate::tst::TxStatusTable;
use rustc_hash::FxHashMap;
use slp_core::{EntityId, TxId};
use std::sync::Mutex;

/// A consistent read view captured by a read-only job: every writer whose
/// commit stamp is at or below `read_stamp` is visible, everything else —
/// including the writers listed `in_progress` at capture — is not.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The commit clock at capture.
    pub read_stamp: u64,
    /// Writers begun but not yet flipped at capture (diagnostic — the
    /// visibility rule needs only `read_stamp`, because commit stamps are
    /// issued monotonically under the same gate captures run under).
    pub in_progress: Vec<TxId>,
    /// First trace stamp claimed for this snapshot's read steps (the
    /// steps occupy a dense block starting here, keeping the recorded
    /// trace gap-free).
    pub base_stamp: u64,
}

/// What [`CommitPipeline::commit`] did.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommitOutcome {
    /// The status flip happened now (and may have cascaded deferred
    /// predecessors' dependents).
    Flipped,
    /// The commit is recorded, but the flip waits on unresolved
    /// lock-order predecessors; it executes automatically when the last
    /// of them resolves. The transaction is durably committed either
    /// way — only snapshot visibility lags.
    Deferred,
}

#[derive(Default)]
struct Pending {
    /// Unresolved lock-order predecessors this writer's flip waits on.
    waiting_on: Vec<TxId>,
    /// Writers whose flips wait on this one.
    dependents: Vec<TxId>,
    /// `Some(true)` committed, `Some(false)` aborted, `None` still
    /// running.
    decided: Option<bool>,
}

#[derive(Default)]
struct Gate {
    /// Last issued commit stamp; snapshots capture it as `read_stamp`.
    commit_clock: u64,
    /// Writers begun and not yet flipped.
    live: Vec<TxId>,
    pending: FxHashMap<TxId, Pending>,
}

#[derive(Default)]
struct Lockers {
    /// Unresolved writers that locked each entity, in grant order, with
    /// their strongest mode (`true` = exclusive).
    by_entity: FxHashMap<u32, Vec<(TxId, bool)>>,
    /// Reverse index for purging on resolution.
    footprint: FxHashMap<TxId, Vec<u32>>,
}

/// Orders status-table flips so that **the flipped set at any snapshot
/// capture is a downward-closed prefix of the serialization order**.
///
/// With early lock release (altruistic donation, DDAG region crawling), a
/// writer can commit before a predecessor it conflicts with: if both
/// flipped in raw commit order, a snapshot could see the successor's
/// version but not the predecessor's — an inconsistent cut. The pipeline
/// records, at each lock grant, a dependency on every unresolved prior
/// *conflicting* locker of the entity; a writer's flip is deferred until
/// those predecessors resolve, cascading when they do. Dependencies point
/// along the conflict order, which safe policies keep acyclic — so under
/// a safe policy every deferred flip eventually executes. (An unsafe
/// mutant can strand flips in a dependency cycle; that is deliberate and
/// non-blocking — the writers stay durably committed, invisible to
/// snapshots, and the run completes.)
///
/// Flips and captures share one gate mutex, so a capture never observes a
/// half-applied cascade. The gate's `commit_clock` is distinct from the
/// trace sequence counter: trace stamps must stay dense for the recorded
/// schedule, while commit stamps only order flips.
#[derive(Default)]
pub struct CommitPipeline {
    tst: TxStatusTable,
    gate: Mutex<Gate>,
    lockers: Mutex<Lockers>,
}

impl CommitPipeline {
    /// An empty pipeline with a fresh status table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The status table this pipeline flips — the sole visibility
    /// authority for reads against the store.
    pub fn status_table(&self) -> &TxStatusTable {
        &self.tst
    }

    /// Registers a writer. Must precede its `note_lock` calls.
    pub fn begin_writer(&self, tx: TxId) {
        let mut gate = self.gate.lock().expect("gate poisoned");
        gate.live.push(tx);
        gate.pending.insert(tx, Pending::default());
    }

    /// Records that `tx` was granted a lock on `entity` (`exclusive` for
    /// X-mode). The flip of `tx` will wait on every unresolved prior
    /// locker of `entity` whose mode conflicts.
    pub fn note_lock(&self, tx: TxId, entity: EntityId, exclusive: bool) {
        let mut deps: Vec<TxId> = Vec::new();
        {
            let mut lockers = self.lockers.lock().expect("lockers poisoned");
            let list = lockers.by_entity.entry(entity.0).or_default();
            for &(prior, prior_exclusive) in list.iter() {
                if prior != tx && (exclusive || prior_exclusive) {
                    deps.push(prior);
                }
            }
            match list.iter_mut().find(|(t, _)| *t == tx) {
                Some(entry) => entry.1 |= exclusive,
                None => {
                    list.push((tx, exclusive));
                    let fp = lockers.footprint.entry(tx).or_default();
                    if !fp.contains(&entity.0) {
                        fp.push(entity.0);
                    }
                }
            }
        }
        if deps.is_empty() {
            return;
        }
        let mut gate = self.gate.lock().expect("gate poisoned");
        for d in deps {
            // A predecessor that resolved between the two locks needs no
            // dependency — its flip already happened.
            if !gate.pending.contains_key(&d) {
                continue;
            }
            let waiting = &mut gate
                .pending
                .get_mut(&tx)
                .expect("begin_writer precedes note_lock")
                .waiting_on;
            if !waiting.contains(&d) {
                waiting.push(d);
                gate.pending
                    .get_mut(&d)
                    .expect("checked present")
                    .dependents
                    .push(tx);
            }
        }
    }

    /// Commits `tx`: flips its status now if every lock-order predecessor
    /// has resolved, otherwise defers the flip to the cascade.
    pub fn commit(&self, tx: TxId) -> CommitOutcome {
        let mut resolved = Vec::new();
        let outcome = {
            let mut gate = self.gate.lock().expect("gate poisoned");
            let p = gate
                .pending
                .get_mut(&tx)
                .expect("commit of an unregistered writer");
            p.decided = Some(true);
            if p.waiting_on.is_empty() {
                Self::resolve(&mut gate, &self.tst, tx, &mut resolved);
                CommitOutcome::Flipped
            } else {
                CommitOutcome::Deferred
            }
        };
        self.purge_lockers(&resolved);
        outcome
    }

    /// Aborts `tx`. Aborts never wait: flipping to `Aborted` makes
    /// nothing visible, so it is always safe immediately — and it
    /// releases any dependents waiting on `tx`.
    pub fn abort(&self, tx: TxId) {
        let mut resolved = Vec::new();
        {
            let mut gate = self.gate.lock().expect("gate poisoned");
            if let Some(p) = gate.pending.get_mut(&tx) {
                p.decided = Some(false);
                Self::resolve(&mut gate, &self.tst, tx, &mut resolved);
            }
        }
        self.purge_lockers(&resolved);
    }

    /// Captures a snapshot: the commit clock and live-writer set, frozen
    /// under the gate, plus a dense block of trace stamps for the
    /// snapshot's read steps claimed via `claim` (called with the gate
    /// held, so the capture point is well-defined against every flip).
    pub fn capture(&self, reads: usize, claim: impl FnOnce(usize) -> u64) -> Snapshot {
        let gate = self.gate.lock().expect("gate poisoned");
        Snapshot {
            read_stamp: gate.commit_clock,
            in_progress: gate.live.clone(),
            base_stamp: claim(reads),
        }
    }

    /// Writers decided but still unflipped (waiting on unresolved
    /// predecessors). Nonzero at quiescence only under unsafe mutants.
    pub fn stranded(&self) -> usize {
        let gate = self.gate.lock().expect("gate poisoned");
        gate.pending
            .values()
            .filter(|p| p.decided.is_some())
            .count()
    }

    /// Resolves `tx` (and every dependent the resolution unblocks) inside
    /// the gate. `resolved` collects them for locker purging outside.
    fn resolve(gate: &mut Gate, tst: &TxStatusTable, tx: TxId, resolved: &mut Vec<TxId>) {
        let mut work = vec![tx];
        while let Some(t) = work.pop() {
            let Some(p) = gate.pending.remove(&t) else {
                continue;
            };
            let commit = p.decided.expect("resolve only runs on decided writers");
            if commit {
                gate.commit_clock += 1;
                tst.commit(t, gate.commit_clock);
            } else {
                tst.abort(t);
            }
            if let Some(i) = gate.live.iter().position(|&l| l == t) {
                gate.live.swap_remove(i);
            }
            resolved.push(t);
            for dep in p.dependents {
                if let Some(q) = gate.pending.get_mut(&dep) {
                    q.waiting_on.retain(|&w| w != t);
                    if q.waiting_on.is_empty() && q.decided.is_some() {
                        work.push(dep);
                    }
                }
            }
        }
    }

    fn purge_lockers(&self, resolved: &[TxId]) {
        if resolved.is_empty() {
            return;
        }
        let mut lockers = self.lockers.lock().expect("lockers poisoned");
        for tx in resolved {
            let Some(fp) = lockers.footprint.remove(tx) else {
                continue;
            };
            for e in fp {
                if let Some(list) = lockers.by_entity.get_mut(&e) {
                    list.retain(|(t, _)| t != tx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tst::TxStatus;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    #[test]
    fn flip_defers_until_lock_order_predecessor_resolves() {
        let p = CommitPipeline::new();
        p.begin_writer(t(1));
        p.begin_writer(t(2));
        p.note_lock(t(1), e(0), true);
        // t2 locked e0 after t1 (early release let it in) — its flip
        // must wait for t1 even though it commits first.
        p.note_lock(t(2), e(0), true);
        assert_eq!(p.commit(t(2)), CommitOutcome::Deferred);
        assert_eq!(p.status_table().status(t(2)), TxStatus::InProgress);
        let s = p.capture(0, |_| 0);
        assert_eq!(s.read_stamp, 0);
        assert_eq!(s.in_progress.len(), 2);
        // t1's commit flips both, in serialization order.
        assert_eq!(p.commit(t(1)), CommitOutcome::Flipped);
        assert_eq!(p.status_table().status(t(1)), TxStatus::Committed(1));
        assert_eq!(p.status_table().status(t(2)), TxStatus::Committed(2));
        assert_eq!(p.stranded(), 0);
        assert!(p.capture(0, |_| 0).in_progress.is_empty());
    }

    #[test]
    fn abort_resolves_immediately_and_releases_dependents() {
        let p = CommitPipeline::new();
        p.begin_writer(t(1));
        p.begin_writer(t(2));
        p.note_lock(t(1), e(0), true);
        p.note_lock(t(2), e(0), true);
        assert_eq!(p.commit(t(2)), CommitOutcome::Deferred);
        p.abort(t(1));
        assert_eq!(p.status_table().status(t(1)), TxStatus::Aborted);
        assert_eq!(
            p.status_table().status(t(2)),
            TxStatus::Committed(1),
            "the abort unblocked the deferred flip"
        );
    }

    #[test]
    fn shared_lockers_do_not_depend_on_each_other() {
        let p = CommitPipeline::new();
        p.begin_writer(t(1));
        p.begin_writer(t(2));
        p.note_lock(t(1), e(0), false);
        p.note_lock(t(2), e(0), false);
        assert_eq!(p.commit(t(2)), CommitOutcome::Flipped);
        assert_eq!(p.commit(t(1)), CommitOutcome::Flipped);
    }

    #[test]
    fn capture_claims_a_dense_stamp_block() {
        let p = CommitPipeline::new();
        let s = p.capture(3, |n| {
            assert_eq!(n, 3);
            17
        });
        assert_eq!(s.base_stamp, 17);
    }
}
