//! # slp-sim — concurrency-control simulator for locking-policy evaluation
//!
//! The paper's companion performance study \[CHMS94\] evaluated the DDAG
//! policy on a knowledge-base management system testbed. This crate is the
//! substitution (DESIGN.md §5): a deterministic discrete-event simulator
//! that runs synthetic workloads against the *actual policy engines* of
//! `slp-policies`, with lock waiting, deadlock detection, abort/restart,
//! and full trace capture for post-hoc verification (legality, properness,
//! serializability).
//!
//! * [`job`] — the policy-agnostic unit of work;
//! * [`adapter`] — the simulator ↔ policy interface ([`Advance`] carries
//!   typed [`slp_policies::PolicyViolation`]s, never strings);
//! * [`adapters`] — the one generic [`EngineAdapter`] over any
//!   [`slp_policies::PolicyEngine`], per-policy [`ActionPlanner`]s, and
//!   [`build_adapter`] for registry-driven construction by
//!   [`slp_policies::PolicyKind`];
//! * [`engine`] — the simulation loop and [`SimReport`] metrics;
//! * [`workload`] — seeded generators (layered DAGs, uniform/long-short
//!   jobs, traversal/insert mixes, hot-set contention).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod adapters;
pub mod engine;
pub mod job;
pub mod workload;

pub use adapter::{Advance, Disposition, PolicyAdapter};
pub use adapters::{
    build_adapter, planner_for, ActionPlanner, AltruisticPlanner, DdagPlanner, DtrPlanner,
    EngineAdapter, PolicyInstance, TwoPhasePlanner,
};
pub use engine::{run_sim, LatencyModel, SimConfig, SimReport};
pub use job::{InsertUnder, Job};
pub use workload::{
    dag_access_jobs, dag_mixed_jobs, deep_dag_jobs, hot_cold_jobs, layered_dag, long_short_jobs,
    read_heavy_jobs, uniform_jobs, LayeredDag,
};
