//! # slp-sim — concurrency-control simulator for locking-policy evaluation
//!
//! The paper's companion performance study \[CHMS94\] evaluated the DDAG
//! policy on a knowledge-base management system testbed. This crate is the
//! substitution (DESIGN.md §5): a deterministic discrete-event simulator
//! that runs synthetic workloads against the *actual policy engines* of
//! `slp-policies`, with lock waiting, deadlock detection, abort/restart,
//! and full trace capture for post-hoc verification (legality, properness,
//! serializability).
//!
//! * [`job`] — the policy-agnostic unit of work;
//! * [`adapter`] — the simulator ↔ policy-engine interface;
//! * [`adapters`] — 2PL, altruistic, DDAG, and DTR adapters;
//! * [`engine`] — the simulation loop and [`SimReport`] metrics;
//! * [`workload`] — seeded generators (layered DAGs, uniform/long-short
//!   jobs, traversal/insert mixes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod adapters;
pub mod engine;
pub mod job;
pub mod workload;

pub use adapter::{Advance, PolicyAdapter};
pub use adapters::{AltruisticAdapter, DdagAdapter, DtrAdapter, TwoPhaseAdapter};
pub use engine::{run_sim, LatencyModel, SimConfig, SimReport};
pub use job::{InsertUnder, Job};
pub use workload::{
    dag_access_jobs, dag_mixed_jobs, layered_dag, long_short_jobs, uniform_jobs, LayeredDag,
};
