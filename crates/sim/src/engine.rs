//! The discrete-event simulation loop.
//!
//! `workers` concurrent slots execute a queue of [`Job`]s against one
//! policy adapter. Each emitted step costs ticks per the latency model.
//! Blocked transactions **park** on the contended entity and are woken in
//! FIFO order when it is unlocked; waits-for cycles (deadlocks) abort the
//! requester that closed the cycle, with a backoff that grows per restart
//! (this breaks symmetric livelocks); policy violations abort and restart
//! the job as a *fresh* transaction (the paper's Fig. 3 "abort and start
//! from node 2" behavior). The complete interleaved step trace is recorded
//! for post-hoc verification (legality, properness, serializability).

use crate::adapter::{Advance, Disposition, PolicyAdapter};
use crate::job::Job;
use rustc_hash::FxHashMap;
use slp_core::{Schedule, ScheduledStep, Step, TxId};

/// Tick costs of the simulated operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LatencyModel {
    /// Cost of a lock step.
    pub lock: u64,
    /// Cost of an unlock step.
    pub unlock: u64,
    /// Cost of a data step (read/write/insert/delete).
    pub data: u64,
    /// Backoff before an aborted job restarts (scaled by the number of
    /// restarts the job has already suffered).
    pub restart_backoff: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            lock: 1,
            unlock: 1,
            data: 5,
            restart_backoff: 10,
        }
    }
}

/// Simulation parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimConfig {
    /// Multiprogramming level: number of concurrent transaction slots.
    pub workers: usize,
    /// Latency model.
    pub latency: LatencyModel,
    /// Hard cap on simulated ticks (guards against livelock in mutant
    /// policies).
    pub max_ticks: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            workers: 4,
            latency: LatencyModel::default(),
            max_ticks: 10_000_000,
        }
    }
}

/// The result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Policy name.
    pub policy: &'static str,
    /// Jobs committed.
    pub committed: usize,
    /// Aborts due to *retryable* policy rule violations (the job restarts
    /// as a fresh transaction after backoff).
    pub policy_aborts: usize,
    /// Jobs dropped on a **fatal** violation ([`slp_policies::PolicyViolation::is_fatal`]):
    /// the request itself is malformed (bad plan, unsupported action), so
    /// retrying can never succeed. Classified by matching the violation
    /// enum, never by message text.
    pub rejected: usize,
    /// Aborts due to deadlock resolution.
    pub deadlock_aborts: usize,
    /// Number of times a transaction found its lock request blocked.
    pub lock_waits: u64,
    /// Total simulated time (commit of the last job).
    pub makespan: u64,
    /// Sum of job response times (first dispatch to commit).
    pub total_response: u64,
    /// Total attempts (= committed + policy/deadlock aborts + rejected).
    pub attempts: usize,
    /// The complete interleaved step trace.
    pub schedule: Schedule,
    /// Whether the run hit `max_ticks` before finishing the job queue.
    pub timed_out: bool,
}

impl SimReport {
    /// Committed jobs per 1000 ticks.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.committed as f64 * 1000.0 / self.makespan as f64
        }
    }

    /// Mean response time per committed job.
    pub fn mean_response(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.total_response as f64 / self.committed as f64
        }
    }

    /// Abort rate over all attempts.
    pub fn abort_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            (self.policy_aborts + self.deadlock_aborts) as f64 / self.attempts as f64
        }
    }
}

struct Run {
    tx: TxId,
    job_idx: usize,
    ready_at: u64,
    dispatched_at: u64,
    /// When blocked, the entity this transaction is parked on. Parked
    /// workers do not poll; they are woken in FIFO order when the entity
    /// is unlocked.
    parked_on: Option<(slp_core::EntityId, u64)>,
}

/// Runs `jobs` through `adapter` under `config`. Deterministic: no RNG is
/// used by the engine itself (ties break by worker index).
pub fn run_sim(adapter: &mut dyn PolicyAdapter, jobs: &[Job], config: &SimConfig) -> SimReport {
    let mut report = SimReport {
        policy: adapter.name(),
        committed: 0,
        policy_aborts: 0,
        rejected: 0,
        deadlock_aborts: 0,
        lock_waits: 0,
        makespan: 0,
        total_response: 0,
        attempts: 0,
        schedule: Schedule::empty(),
        timed_out: false,
    };
    let mut next_tx = 1u32;
    let mut next_job = 0usize;
    // Jobs whose attempt aborted, awaiting a restart: (job_idx, not_before,
    // original dispatch time).
    let mut retry_queue: Vec<(usize, u64, u64)> = Vec::new();
    let mut workers: Vec<Option<Run>> = (0..config.workers).map(|_| None).collect();
    let mut dispatch_times: FxHashMap<usize, u64> = FxHashMap::default();
    // Restart counts per job (scales the backoff to break livelocks).
    let mut attempts_of: FxHashMap<usize, u64> = FxHashMap::default();
    // tx -> (blocked-on holder) for deadlock detection.
    let mut waits_for: FxHashMap<TxId, TxId> = FxHashMap::default();
    // FIFO park sequence counter (first parked, first woken).
    let mut park_seq = 0u64;
    let mut now = 0u64;

    fn wake_parked(workers: &mut [Option<Run>], steps: &[Step], now: u64) {
        for s in steps {
            if !s.is_unlock() {
                continue;
            }
            // Wake the earliest-parked worker waiting on this entity.
            let candidate = (0..workers.len())
                .filter_map(|i| {
                    workers[i]
                        .as_ref()
                        .and_then(|r| r.parked_on)
                        .filter(|&(e, _)| e == s.entity)
                        .map(|(_, seq)| (seq, i))
                })
                .min();
            if let Some((_, i)) = candidate {
                let run = workers[i].as_mut().expect("parked worker");
                run.parked_on = None;
                run.ready_at = now + 1;
            }
        }
    }

    let step_cost = |l: &LatencyModel, steps: &[Step]| -> u64 {
        steps
            .iter()
            .map(|s| {
                if s.is_lock() {
                    l.lock
                } else if s.is_unlock() {
                    l.unlock
                } else {
                    l.data
                }
            })
            .sum()
    };

    loop {
        if now > config.max_ticks {
            report.timed_out = true;
            break;
        }
        // Fill idle workers.
        for w in workers.iter_mut() {
            if w.is_some() {
                continue;
            }
            // Prefer restarts whose backoff has expired, then fresh jobs.
            let job_idx = if let Some(pos) = retry_queue
                .iter()
                .position(|&(_, not_before, _)| not_before <= now)
            {
                let (idx, _, orig) = retry_queue.remove(pos);
                dispatch_times.insert(idx, orig);
                Some(idx)
            } else if next_job < jobs.len() {
                let idx = next_job;
                next_job += 1;
                dispatch_times.insert(idx, now);
                Some(idx)
            } else {
                None
            };
            let Some(job_idx) = job_idx else { continue };
            let tx = TxId(next_tx);
            next_tx += 1;
            report.attempts += 1;
            match adapter.begin(tx, &jobs[job_idx]) {
                Ok(()) => {
                    *w = Some(Run {
                        tx,
                        job_idx,
                        ready_at: now,
                        dispatched_at: dispatch_times[&job_idx],
                        parked_on: None,
                    });
                }
                // Fatal violations (malformed plan, unsupported action —
                // see `Disposition::of`) can never succeed on retry: drop
                // the job. Transient rule violations restart it with
                // backoff.
                Err(v) if Disposition::of(&v) == Disposition::Reject => {
                    report.rejected += 1;
                }
                Err(_) => {
                    report.policy_aborts += 1;
                    let n = attempts_of.entry(job_idx).or_insert(0);
                    *n += 1;
                    retry_queue.push((
                        job_idx,
                        now + config.latency.restart_backoff * *n,
                        dispatch_times[&job_idx],
                    ));
                }
            }
        }
        // Termination: nothing running and nothing left to dispatch.
        let any_running = workers.iter().any(Option::is_some);
        if !any_running {
            if next_job >= jobs.len() && retry_queue.is_empty() {
                break;
            }
            // Idle but restarts are pending: jump to the earliest backoff.
            if next_job >= jobs.len() {
                now = retry_queue
                    .iter()
                    .map(|&(_, t, _)| t)
                    .min()
                    .unwrap_or(now + 1);
                continue;
            }
            continue;
        }
        // Pick the ready worker with the earliest ready time.
        let wi = (0..workers.len())
            .filter(|&i| workers[i].is_some())
            .min_by_key(|&i| (workers[i].as_ref().expect("is_some").ready_at, i))
            .expect("some worker running");
        if workers[wi].as_ref().expect("selected").ready_at == u64::MAX {
            // Every running worker is parked and no restart can proceed:
            // break the stall by aborting the earliest-parked worker.
            let (_, stalled) = workers
                .iter()
                .enumerate()
                .filter_map(|(i, w)| {
                    w.as_ref()
                        .and_then(|r| r.parked_on)
                        .map(|(_, seq)| (seq, i))
                })
                .min()
                .expect("a parked worker exists");
            let run = workers[stalled].take().expect("parked");
            report.deadlock_aborts += 1;
            waits_for.remove(&run.tx);
            let unlocks = adapter.abort(run.tx);
            for s in &unlocks {
                report.schedule.push(ScheduledStep::new(run.tx, *s));
            }
            wake_parked(&mut workers, &unlocks, now);
            let n = attempts_of.entry(run.job_idx).or_insert(0);
            *n += 1;
            retry_queue.push((
                run.job_idx,
                now + config.latency.restart_backoff * *n,
                run.dispatched_at,
            ));
            dispatch_times.insert(run.job_idx, run.dispatched_at);
            now += 1;
            continue;
        }
        let run = workers[wi].as_mut().expect("selected");
        now = now.max(run.ready_at);
        let tx = run.tx;
        match adapter.advance(tx) {
            Advance::Progress(steps) => {
                waits_for.remove(&tx);
                for s in &steps {
                    report.schedule.push(ScheduledStep::new(tx, *s));
                }
                run.ready_at = now + step_cost(&config.latency, &steps).max(1);
                wake_parked(&mut workers, &steps, now);
            }
            Advance::Done(steps) => {
                waits_for.remove(&tx);
                for s in &steps {
                    report.schedule.push(ScheduledStep::new(tx, *s));
                }
                let finish = now + step_cost(&config.latency, &steps).max(1);
                report.committed += 1;
                report.total_response += finish - run.dispatched_at;
                report.makespan = report.makespan.max(finish);
                workers[wi] = None;
                wake_parked(&mut workers, &steps, now);
            }
            Advance::Blocked { entity, holder } => {
                report.lock_waits += 1;
                waits_for.insert(tx, holder);
                // Deadlock detection: does the waits-for chain from the
                // holder lead back to this transaction?
                let mut seen = vec![tx];
                let mut cur = holder;
                let deadlock = loop {
                    if cur == tx {
                        break true;
                    }
                    if seen.contains(&cur) {
                        break false; // a cycle among others; they resolve it
                    }
                    seen.push(cur);
                    match waits_for.get(&cur) {
                        Some(&next) => cur = next,
                        None => break false,
                    }
                };
                if deadlock {
                    // Abort the requester that closed the cycle, with a
                    // backoff that grows per restart (breaks symmetric
                    // livelocks).
                    report.deadlock_aborts += 1;
                    waits_for.remove(&tx);
                    let unlocks = adapter.abort(tx);
                    for s in &unlocks {
                        report.schedule.push(ScheduledStep::new(tx, *s));
                    }
                    let job_idx = run.job_idx;
                    let dispatched = run.dispatched_at;
                    let n = attempts_of.entry(job_idx).or_insert(0);
                    *n += 1;
                    retry_queue.push((
                        job_idx,
                        now + config.latency.restart_backoff * *n,
                        dispatched,
                    ));
                    dispatch_times.insert(job_idx, dispatched);
                    workers[wi] = None;
                    wake_parked(&mut workers, &unlocks, now);
                } else {
                    // Park until the entity is unlocked (FIFO).
                    run.parked_on = Some((entity, park_seq));
                    park_seq += 1;
                    run.ready_at = u64::MAX;
                }
            }
            Advance::Violation(v) => {
                waits_for.remove(&tx);
                let unlocks = adapter.abort(tx);
                for s in &unlocks {
                    report.schedule.push(ScheduledStep::new(tx, *s));
                }
                let job_idx = run.job_idx;
                let dispatched = run.dispatched_at;
                // Classification keys off the violation enum (the shared
                // `Disposition` rule): fatal violations drop the job;
                // retryable rule violations (e.g. a Fig. 3 plan
                // invalidation) restart it as a fresh transaction after
                // backoff.
                if Disposition::of(&v) == Disposition::Reject {
                    report.rejected += 1;
                } else {
                    report.policy_aborts += 1;
                    let n = attempts_of.entry(job_idx).or_insert(0);
                    *n += 1;
                    retry_queue.push((
                        job_idx,
                        now + config.latency.restart_backoff * *n,
                        dispatched,
                    ));
                    dispatch_times.insert(job_idx, dispatched);
                }
                workers[wi] = None;
                wake_parked(&mut workers, &unlocks, now);
            }
        }
    }
    report.makespan = report.makespan.max(now);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapters::{build_adapter, PolicyInstance};
    use slp_core::EntityId;
    use slp_policies::{PolicyConfig, PolicyKind, PolicyRegistry};

    fn pool(n: u32) -> Vec<EntityId> {
        (0..n).map(EntityId).collect()
    }

    fn two_phase(n: u32) -> PolicyInstance {
        build_adapter(
            &PolicyRegistry::new(),
            PolicyKind::TwoPhase,
            &PolicyConfig::flat(pool(n)),
        )
        .unwrap()
    }

    #[test]
    fn disjoint_jobs_all_commit_without_waits() {
        let mut adapter = two_phase(8);
        let jobs: Vec<Job> = (0..4)
            .map(|i| Job::access(vec![EntityId(i * 2), EntityId(i * 2 + 1)]))
            .collect();
        let report = run_sim(&mut adapter, &jobs, &SimConfig::default());
        assert_eq!(report.committed, 4);
        assert_eq!(report.lock_waits, 0);
        assert_eq!(report.policy_aborts + report.deadlock_aborts, 0);
        assert!(report.schedule.is_legal());
        assert!(slp_core::is_serializable(&report.schedule));
    }

    #[test]
    fn contended_jobs_wait_but_commit() {
        let mut adapter = two_phase(1);
        let jobs: Vec<Job> = (0..3).map(|_| Job::access(vec![EntityId(0)])).collect();
        let report = run_sim(&mut adapter, &jobs, &SimConfig::default());
        assert_eq!(report.committed, 3);
        assert!(report.lock_waits > 0, "serialized access must wait");
        assert!(report.schedule.is_legal());
    }

    #[test]
    fn opposite_order_jobs_deadlock_and_recover() {
        let mut adapter = two_phase(2);
        // T1: 0 then 1. T2: 1 then 0 — classic deadlock under 2PL.
        let jobs = vec![
            Job::access(vec![EntityId(0), EntityId(1)]),
            Job::access(vec![EntityId(1), EntityId(0)]),
        ];
        let report = run_sim(&mut adapter, &jobs, &SimConfig::default());
        assert_eq!(
            report.committed, 2,
            "deadlock must be resolved by abort+restart"
        );
        assert!(report.deadlock_aborts >= 1);
        assert!(report.schedule.is_legal());
        assert!(slp_core::is_serializable(&report.schedule));
    }

    #[test]
    fn single_worker_serializes_everything() {
        let mut adapter = two_phase(2);
        let jobs = vec![
            Job::access(vec![EntityId(0), EntityId(1)]),
            Job::access(vec![EntityId(1), EntityId(0)]),
        ];
        let config = SimConfig {
            workers: 1,
            ..Default::default()
        };
        let report = run_sim(&mut adapter, &jobs, &config);
        assert_eq!(report.committed, 2);
        assert_eq!(report.deadlock_aborts, 0, "MPL 1 cannot deadlock");
        assert_eq!(report.lock_waits, 0);
    }

    #[test]
    fn report_metrics_are_consistent() {
        let mut adapter = two_phase(4);
        let jobs: Vec<Job> = (0..6).map(|i| Job::access(vec![EntityId(i % 4)])).collect();
        let report = run_sim(&mut adapter, &jobs, &SimConfig::default());
        assert_eq!(report.committed, 6);
        assert_eq!(
            report.attempts,
            6 + report.policy_aborts + report.deadlock_aborts
        );
        assert!(report.throughput() > 0.0);
        assert!(report.mean_response() > 0.0);
        assert!(report.makespan > 0);
        assert!(!report.timed_out);
    }
}
