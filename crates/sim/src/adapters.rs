//! Policy adapters: one per policy compared in experiment E9.
//!
//! * [`TwoPhaseAdapter`] — strict 2PL (locks on demand in job order, all
//!   releases at commit);
//! * [`AltruisticAdapter`] — altruistic locking with eager donation (each
//!   target is donated as soon as the next lock is acquired);
//! * [`DdagAdapter`] — DDAG traversals (dominator-closed regions locked in
//!   topological order with crawling release) plus structural inserts;
//! * [`DtrAdapter`] — dynamic tree policy (plans precomputed by the
//!   engine, per rule DT2).

use crate::adapter::{Advance, PolicyAdapter};
use crate::job::Job;
use slp_core::{EntityId, Step, StructuralState, TxId, Universe};
use slp_graph::{dag, dominators, rooted, DiGraph};
use slp_policies::altruistic::{AltruisticEngine, AltruisticViolation};
use slp_policies::ddag::{DdagEngine, DdagViolation};
use slp_policies::dtr::{DtrEngine, DtrViolation};
use std::collections::{BTreeMap, BTreeSet, HashMap};

// ---------------------------------------------------------------------
// 2PL
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FlatAction {
    Lock(EntityId),
    Access(EntityId),
    Unlock(EntityId),
    LockedPoint,
}

/// Strict two-phase locking over a flat entity pool.
pub struct TwoPhaseAdapter {
    engine: AltruisticEngine,
    plans: HashMap<TxId, (Vec<FlatAction>, usize)>,
    pool: Vec<EntityId>,
}

impl TwoPhaseAdapter {
    /// An adapter over a pool of initially existing entities.
    pub fn new(pool: Vec<EntityId>) -> Self {
        // Strict 2PL is altruistic locking with no donations: AL2 never
        // fires, so the engine serves as a plain lock manager with
        // at-most-once bookkeeping.
        TwoPhaseAdapter {
            engine: AltruisticEngine::new(),
            plans: HashMap::new(),
            pool,
        }
    }

    /// The initial structural state (the whole pool exists).
    pub fn initial_state(&self) -> StructuralState {
        StructuralState::from_entities(self.pool.iter().copied())
    }
}

impl PolicyAdapter for TwoPhaseAdapter {
    fn name(&self) -> &'static str {
        "2PL"
    }

    fn begin(&mut self, tx: TxId, job: &Job) -> Result<(), String> {
        self.engine.begin(tx).map_err(|e| e.to_string())?;
        let mut plan = Vec::with_capacity(job.targets.len() * 2);
        for &t in &job.targets {
            plan.push(FlatAction::Lock(t));
            plan.push(FlatAction::Access(t));
        }
        self.plans.insert(tx, (plan, 0));
        Ok(())
    }

    fn advance(&mut self, tx: TxId) -> Advance {
        flat_advance(&mut self.engine, &mut self.plans, tx)
    }

    fn abort(&mut self, tx: TxId) -> Vec<Step> {
        self.plans.remove(&tx);
        self.engine.abort(tx)
    }
}

/// Shared action interpreter for the two flat-pool adapters.
fn flat_advance(
    engine: &mut AltruisticEngine,
    plans: &mut HashMap<TxId, (Vec<FlatAction>, usize)>,
    tx: TxId,
) -> Advance {
    let Some((plan, cursor)) = plans.get_mut(&tx) else {
        return Advance::Violation(format!("{tx} has no plan"));
    };
    let Some(&action) = plan.get(*cursor) else {
        plans.remove(&tx);
        return match engine.finish(tx) {
            Ok(steps) => Advance::Done(steps),
            Err(e) => Advance::Violation(e.to_string()),
        };
    };
    let result = match action {
        FlatAction::Lock(e) => match engine.check_lock(tx, e) {
            Ok(()) => Ok(vec![engine.lock(tx, e).expect("checked")]),
            Err(AltruisticViolation::LockConflict(entity, holder)) => {
                return Advance::Blocked { entity, holder };
            }
            Err(other) => Err(other.to_string()),
        },
        FlatAction::Access(e) => engine.access(tx, e).map_err(|e| e.to_string()),
        FlatAction::Unlock(e) => engine
            .unlock(tx, e)
            .map(|s| vec![s])
            .map_err(|e| e.to_string()),
        FlatAction::LockedPoint => engine
            .declare_locked_point(tx)
            .map(|()| Vec::new())
            .map_err(|e| e.to_string()),
    };
    match result {
        Ok(steps) => {
            *cursor += 1;
            Advance::Progress(steps)
        }
        Err(msg) => Advance::Violation(msg),
    }
}

// ---------------------------------------------------------------------
// Altruistic
// ---------------------------------------------------------------------

/// Altruistic locking with eager donation: target `i` is donated right
/// after target `i + 1`'s lock is acquired, so short transactions can run
/// in the long transaction's wake.
pub struct AltruisticAdapter {
    engine: AltruisticEngine,
    plans: HashMap<TxId, (Vec<FlatAction>, usize)>,
    pool: Vec<EntityId>,
}

impl AltruisticAdapter {
    /// An adapter over a pool of initially existing entities.
    pub fn new(pool: Vec<EntityId>) -> Self {
        AltruisticAdapter {
            engine: AltruisticEngine::new(),
            plans: HashMap::new(),
            pool,
        }
    }

    /// The initial structural state (the whole pool exists).
    pub fn initial_state(&self) -> StructuralState {
        StructuralState::from_entities(self.pool.iter().copied())
    }
}

impl PolicyAdapter for AltruisticAdapter {
    fn name(&self) -> &'static str {
        "altruistic"
    }

    fn begin(&mut self, tx: TxId, job: &Job) -> Result<(), String> {
        self.engine.begin(tx).map_err(|e| e.to_string())?;
        let mut plan = Vec::new();
        for (i, &t) in job.targets.iter().enumerate() {
            plan.push(FlatAction::Lock(t));
            if i == job.targets.len() - 1 {
                plan.push(FlatAction::LockedPoint);
            }
            if i > 0 {
                // Donate the previous target now that the next lock is held.
                plan.push(FlatAction::Unlock(job.targets[i - 1]));
            }
            plan.push(FlatAction::Access(t));
        }
        self.plans.insert(tx, (plan, 0));
        Ok(())
    }

    fn advance(&mut self, tx: TxId) -> Advance {
        flat_advance(&mut self.engine, &mut self.plans, tx)
    }

    fn abort(&mut self, tx: TxId) -> Vec<Step> {
        self.plans.remove(&tx);
        self.engine.abort(tx)
    }
}

// ---------------------------------------------------------------------
// DDAG
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DdagAction {
    Lock(EntityId),
    Access(EntityId),
    Unlock(EntityId),
    InsertNode(EntityId),
    InsertEdge(EntityId, EntityId),
}

/// DDAG traversal and insertion transactions over a shared rooted DAG.
pub struct DdagAdapter {
    engine: DdagEngine,
    plans: HashMap<TxId, (Vec<DdagAction>, usize)>,
}

impl DdagAdapter {
    /// An adapter over an initial rooted DAG.
    pub fn new(universe: Universe, graph: DiGraph) -> Self {
        DdagAdapter {
            engine: DdagEngine::new(universe, graph),
            plans: HashMap::new(),
        }
    }

    /// An adapter with a mutant rule configuration (ablations).
    pub fn with_config(
        universe: Universe,
        graph: DiGraph,
        config: slp_policies::ddag::DdagConfig,
    ) -> Self {
        DdagAdapter {
            engine: DdagEngine::with_config(universe, graph, config),
            plans: HashMap::new(),
        }
    }

    /// Interns a fresh entity (for insert jobs).
    pub fn intern(&mut self, name: &str) -> EntityId {
        self.engine.intern(name)
    }

    /// The current graph.
    pub fn graph(&self) -> &DiGraph {
        self.engine.graph()
    }

    /// The initial structural state: all current nodes and edge entities.
    /// Call before running jobs.
    pub fn initial_state(&self) -> StructuralState {
        let mut s = StructuralState::from_entities(self.engine.graph().nodes());
        for (a, b) in self.engine.graph().edges() {
            if let Some(e) = self.engine.edge_entity(a, b) {
                s.insert(e);
            }
        }
        s
    }

    /// Plans a traversal: the dominator-closed region covering `targets`,
    /// locked in topological order with crawling release. Planned against
    /// the *current* graph — concurrent structural changes surface later
    /// as policy violations (abort + replan), as in Fig. 3.
    fn plan_traversal(&self, targets: &[EntityId]) -> Result<Vec<DdagAction>, String> {
        let g = self.engine.graph();
        let root = rooted::root(g).ok_or("graph is not rooted")?;
        for &t in targets {
            if !g.has_node(t) {
                return Err(format!("target {t} not in graph"));
            }
        }
        // Lowest common dominator: intersect dominator sets, take the one
        // dominated by all others in the intersection (the largest set).
        let sets = dominators::dominator_sets(g, root);
        let mut common: BTreeSet<EntityId> = sets
            .get(&targets[0])
            .ok_or("target unreachable from root")?
            .clone();
        for t in &targets[1..] {
            let s = sets.get(t).ok_or("target unreachable from root")?;
            common = common.intersection(s).copied().collect();
        }
        let start = common
            .iter()
            .copied()
            .max_by_key(|d| sets[d].len())
            .ok_or("no common dominator")?;
        // Region: predecessor closure from the targets up to `start`.
        let mut region: BTreeSet<EntityId> = targets.iter().copied().collect();
        region.insert(start);
        let mut frontier: Vec<EntityId> = targets.iter().copied().filter(|&t| t != start).collect();
        while let Some(n) = frontier.pop() {
            for p in g.predecessors(n) {
                if p != start && region.insert(p) {
                    frontier.push(p);
                }
            }
            // `start` dominates everything in the closure (see Lemma 3),
            // so the closure terminates at `start` without passing it.
        }
        // Lock order: global topological order restricted to the region.
        let topo = dag::topological_sort(g).ok_or("graph has a cycle")?;
        let order: Vec<EntityId> = topo.into_iter().filter(|n| region.contains(n)).collect();
        // Release point of n: after the last region-successor of n is
        // locked (so L5's "presently holding a predecessor" always holds).
        let idx: BTreeMap<EntityId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut release_after: BTreeMap<usize, Vec<EntityId>> = BTreeMap::new();
        for &n in &order {
            let last_succ = g
                .successors(n)
                .filter(|s| region.contains(s))
                .filter_map(|s| idx.get(&s).copied())
                .max();
            let at = last_succ.unwrap_or(idx[&n]);
            release_after.entry(at).or_default().push(n);
        }
        let target_set: BTreeSet<EntityId> = targets.iter().copied().collect();
        let mut plan = Vec::new();
        for (i, &n) in order.iter().enumerate() {
            plan.push(DdagAction::Lock(n));
            if target_set.contains(&n) {
                plan.push(DdagAction::Access(n));
            }
            if let Some(done) = release_after.get(&i) {
                for &m in done {
                    plan.push(DdagAction::Unlock(m));
                }
            }
        }
        Ok(plan)
    }
}

impl PolicyAdapter for DdagAdapter {
    fn name(&self) -> &'static str {
        "DDAG"
    }

    fn begin(&mut self, tx: TxId, job: &Job) -> Result<(), String> {
        let plan = if let Some(ins) = job.insert_under {
            let mut p = vec![
                DdagAction::Lock(ins.parent),
                DdagAction::Lock(ins.node),
                DdagAction::InsertNode(ins.node),
                DdagAction::InsertEdge(ins.parent, ins.node),
                DdagAction::Unlock(ins.parent),
                DdagAction::Unlock(ins.node),
            ];
            for &t in &job.targets {
                let _ = t; // insert jobs carry no extra targets
            }
            p.shrink_to_fit();
            p
        } else {
            self.plan_traversal(&job.targets)?
        };
        self.engine.begin(tx).map_err(|e| e.to_string())?;
        self.plans.insert(tx, (plan, 0));
        Ok(())
    }

    fn advance(&mut self, tx: TxId) -> Advance {
        let Some((plan, cursor)) = self.plans.get_mut(&tx) else {
            return Advance::Violation(format!("{tx} has no plan"));
        };
        let Some(&action) = plan.get(*cursor) else {
            self.plans.remove(&tx);
            return match self.engine.finish(tx) {
                Ok(steps) => Advance::Done(steps),
                Err(e) => Advance::Violation(e.to_string()),
            };
        };
        let result = match action {
            DdagAction::Lock(n) => match self.engine.check_lock(tx, n) {
                Ok(()) => Ok(vec![self.engine.lock(tx, n).expect("checked")]),
                Err(DdagViolation::LockConflict(entity, holder)) => {
                    return Advance::Blocked { entity, holder };
                }
                Err(other) => Err(other.to_string()),
            },
            DdagAction::Access(n) => self.engine.access(tx, n).map_err(|e| e.to_string()),
            DdagAction::Unlock(n) => self
                .engine
                .unlock(tx, n)
                .map(|s| vec![s])
                .map_err(|e| e.to_string()),
            DdagAction::InsertNode(n) => self.engine.insert_node(tx, n).map_err(|e| e.to_string()),
            DdagAction::InsertEdge(a, b) => {
                self.engine.insert_edge(tx, a, b).map_err(|e| e.to_string())
            }
        };
        match result {
            Ok(steps) => {
                *cursor += 1;
                Advance::Progress(steps)
            }
            Err(msg) => Advance::Violation(msg),
        }
    }

    fn abort(&mut self, tx: TxId) -> Vec<Step> {
        self.plans.remove(&tx);
        self.engine.abort(tx)
    }
}

// ---------------------------------------------------------------------
// DTR
// ---------------------------------------------------------------------

/// Dynamic tree policy transactions; the engine owns the database forest
/// and precomputes each transaction's plan (rule DT2).
pub struct DtrAdapter {
    engine: DtrEngine,
    pool: Vec<EntityId>,
}

impl DtrAdapter {
    /// An adapter over a pool of initially existing entities (the forest
    /// starts empty, per DT0, and grows as transactions arrive).
    pub fn new(pool: Vec<EntityId>) -> Self {
        DtrAdapter {
            engine: DtrEngine::new(),
            pool,
        }
    }

    /// The initial structural state (the whole pool exists; the forest is
    /// concurrency-control metadata, not database state).
    pub fn initial_state(&self) -> StructuralState {
        StructuralState::from_entities(self.pool.iter().copied())
    }

    /// The engine (for forest inspection in examples/tests).
    pub fn engine(&self) -> &DtrEngine {
        &self.engine
    }
}

impl PolicyAdapter for DtrAdapter {
    fn name(&self) -> &'static str {
        "DTR"
    }

    fn begin(&mut self, tx: TxId, job: &Job) -> Result<(), String> {
        let ops: BTreeMap<EntityId, Vec<slp_core::DataOp>> = job
            .targets
            .iter()
            .map(|&t| (t, vec![slp_core::DataOp::Read, slp_core::DataOp::Write]))
            .collect();
        self.engine.begin(tx, &ops).map_err(|e| e.to_string())?;
        Ok(())
    }

    fn advance(&mut self, tx: TxId) -> Advance {
        if self.engine.is_done(tx) {
            return match self.engine.finish(tx) {
                Ok(steps) => Advance::Done(steps),
                Err(e) => Advance::Violation(e.to_string()),
            };
        }
        match self.engine.check_step(tx) {
            Ok(()) => match self.engine.step(tx) {
                Ok(step) => Advance::Progress(vec![step]),
                Err(e) => Advance::Violation(e.to_string()),
            },
            Err(DtrViolation::LockConflict(entity, holder)) => Advance::Blocked { entity, holder },
            Err(e) => Advance::Violation(e.to_string()),
        }
    }

    fn abort(&mut self, tx: TxId) -> Vec<Step> {
        self.engine.finish(tx).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: u32) -> Vec<EntityId> {
        (0..n).map(EntityId).collect()
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    fn drain(adapter: &mut dyn PolicyAdapter, tx: TxId) -> Vec<Step> {
        let mut all = Vec::new();
        loop {
            match adapter.advance(tx) {
                Advance::Progress(s) => all.extend(s),
                Advance::Done(s) => {
                    all.extend(s);
                    return all;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn two_phase_adapter_runs_a_job() {
        let mut a = TwoPhaseAdapter::new(pool(4));
        a.begin(t(1), &Job::access(vec![EntityId(0), EntityId(2)]))
            .unwrap();
        let steps = drain(&mut a, t(1));
        // 2 locks + 2*(R+W) + 2 unlocks
        assert_eq!(steps.len(), 8);
        let lt = slp_core::LockedTransaction::new(t(1), steps);
        assert!(lt.validate().is_ok());
        assert!(lt.is_two_phase(), "strict 2PL output must be two-phase");
    }

    #[test]
    fn two_phase_adapter_blocks_on_conflict() {
        let mut a = TwoPhaseAdapter::new(pool(2));
        a.begin(t(1), &Job::access(vec![EntityId(0)])).unwrap();
        a.begin(t(2), &Job::access(vec![EntityId(0)])).unwrap();
        assert!(matches!(a.advance(t(1)), Advance::Progress(_))); // T1 locks 0
        assert_eq!(
            a.advance(t(2)),
            Advance::Blocked {
                entity: EntityId(0),
                holder: t(1)
            }
        );
        let _ = a.abort(t(2));
    }

    #[test]
    fn altruistic_adapter_donates_early() {
        let mut a = AltruisticAdapter::new(pool(4));
        a.begin(
            t(1),
            &Job::access(vec![EntityId(0), EntityId(1), EntityId(2)]),
        )
        .unwrap();
        let steps = drain(&mut a, t(1));
        let lt = slp_core::LockedTransaction::new(t(1), steps.clone());
        assert!(lt.validate().is_ok());
        assert!(
            !lt.is_two_phase(),
            "altruistic plans donate before the locked point"
        );
        // Unlock of entity 0 comes before the access of entity 2.
        let pos_unlock0 = steps
            .iter()
            .position(|s| *s == Step::unlock_exclusive(EntityId(0)))
            .unwrap();
        let pos_access2 = steps
            .iter()
            .position(|s| *s == Step::read(EntityId(2)))
            .unwrap();
        assert!(pos_unlock0 < pos_access2);
    }

    fn diamond_adapter() -> (DdagAdapter, Vec<EntityId>) {
        // Diamond r -> {a, b} -> j.
        let mut u = Universe::new();
        let ids = u.entities(["r", "a", "b", "j"]);
        let mut g = DiGraph::new();
        for &n in &ids {
            g.add_node(n).unwrap();
        }
        g.add_edge(ids[0], ids[1]).unwrap();
        g.add_edge(ids[0], ids[2]).unwrap();
        g.add_edge(ids[1], ids[3]).unwrap();
        g.add_edge(ids[2], ids[3]).unwrap();
        (DdagAdapter::new(u, g), ids)
    }

    #[test]
    fn ddag_single_target_locks_only_the_target() {
        // L4: a transaction may begin by locking any node, so a job that
        // only touches the join node needs exactly one lock.
        let (mut a, ids) = diamond_adapter();
        a.begin(t(1), &Job::access(vec![ids[3]])).unwrap();
        let steps = drain(&mut a, t(1));
        let locked: Vec<EntityId> = steps
            .iter()
            .filter(|s| s.is_lock())
            .map(|s| s.entity)
            .collect();
        assert_eq!(locked, vec![ids[3]]);
    }

    #[test]
    fn ddag_multi_target_closes_the_dominator_region() {
        // Accessing {a, j} forces start at the common dominator r, and the
        // predecessor closure pulls in b (all of j's predecessors must be
        // locked before j, per L5).
        let (mut a, ids) = diamond_adapter();
        a.begin(t(1), &Job::access(vec![ids[1], ids[3]])).unwrap();
        let steps = drain(&mut a, t(1));
        let mut locked: Vec<EntityId> = steps
            .iter()
            .filter(|s| s.is_lock())
            .map(|s| s.entity)
            .collect();
        assert_eq!(locked[0], ids[0], "start at the common dominator r");
        assert_eq!(
            *locked.last().unwrap(),
            ids[3],
            "join j locked after its preds"
        );
        locked.sort_unstable();
        assert_eq!(locked, vec![ids[0], ids[1], ids[2], ids[3]]);
        let lt = slp_core::LockedTransaction::new(t(1), steps);
        assert!(lt.validate().is_ok());
        // Crawling: r is released before the transaction ends.
        let pos_unlock_r = lt
            .steps
            .iter()
            .position(|s| *s == Step::unlock_exclusive(ids[0]))
            .expect("r released");
        assert!(pos_unlock_r < lt.steps.len() - 1);
    }

    #[test]
    fn ddag_adapter_insert_job() {
        let mut u = Universe::new();
        let ids = u.entities(["r", "a"]);
        let mut g = DiGraph::new();
        g.add_node(ids[0]).unwrap();
        g.add_node(ids[1]).unwrap();
        g.add_edge(ids[0], ids[1]).unwrap();
        let mut a = DdagAdapter::new(u, g);
        let fresh = a.intern("new-node");
        a.begin(t(1), &Job::insert(ids[1], fresh)).unwrap();
        let steps = drain(&mut a, t(1));
        assert!(a.graph().has_node(fresh));
        assert!(a.graph().has_edge(ids[1], fresh));
        let lt = slp_core::LockedTransaction::new(t(1), steps);
        assert!(lt.validate().is_ok());
        // The trace is proper from the adapter's initial state... state
        // captured *now* includes the new node; capture order matters.
    }

    #[test]
    fn dtr_adapter_runs_jobs_and_grows_forest() {
        let mut a = DtrAdapter::new(pool(5));
        a.begin(t(1), &Job::access(vec![EntityId(0), EntityId(1)]))
            .unwrap();
        let steps = drain(&mut a, t(1));
        assert!(!steps.is_empty());
        assert_eq!(a.engine().forest().len(), 2);
        let lt = slp_core::LockedTransaction::new(t(1), steps);
        assert!(lt.validate().is_ok());
    }

    #[test]
    fn dtr_adapter_blocks_on_contention() {
        let mut a = DtrAdapter::new(pool(3));
        a.begin(t(1), &Job::access(vec![EntityId(0)])).unwrap();
        assert!(matches!(a.advance(t(1)), Advance::Progress(_))); // lock 0
        a.begin(t(2), &Job::access(vec![EntityId(0)])).unwrap();
        assert!(matches!(a.advance(t(2)), Advance::Blocked { .. }));
        let _ = a.abort(t(2));
    }
}
