//! One generic adapter over every policy: [`EngineAdapter`] drives any
//! [`PolicyEngine`] from per-transaction action plans produced by a
//! per-policy [`ActionPlanner`].
//!
//! The planner split is what distinguishes policies that share an engine:
//! strict 2PL and altruistic locking both run on a plain lock manager, but
//! the [`TwoPhasePlanner`] holds every lock to the end while the
//! [`AltruisticPlanner`] donates each target as soon as the next lock is
//! acquired. The [`DdagPlanner`] lays dominator-closed traversal regions
//! over the engine's *current* graph (so concurrent structural changes
//! surface later as policy violations — abort + replan, as in Fig. 3),
//! and the [`DtrPlanner`] defers entirely to the engine, which precomputes
//! tree-locked plans per rule DT2.
//!
//! Use [`build_adapter`] to construct the adapter for any
//! [`PolicyKind`] through a [`PolicyRegistry`]:
//!
//! ```
//! use slp_core::EntityId;
//! use slp_policies::{PolicyConfig, PolicyKind, PolicyRegistry};
//! use slp_sim::{build_adapter, run_sim, uniform_jobs, SimConfig};
//!
//! let registry = PolicyRegistry::new();
//! let pool: Vec<EntityId> = (0..8).map(EntityId).collect();
//! let jobs = uniform_jobs(&pool, 10, 2, 7);
//! let mut adapter =
//!     build_adapter(&registry, PolicyKind::TwoPhase, &PolicyConfig::flat(pool)).unwrap();
//! let report = run_sim(&mut adapter, &jobs, &SimConfig::default());
//! assert_eq!(report.committed, 10);
//! ```

use crate::adapter::{Advance, PolicyAdapter};
use crate::job::Job;
use rustc_hash::FxHashMap;
use slp_core::{EntityId, Step, StructuralState, TxId};
use slp_graph::{dag, dominators, rooted, DiGraph};
use slp_policies::{
    AccessIntent, PlanViolation, PolicyAction, PolicyConfig, PolicyEngine, PolicyKind,
    PolicyRegistry, PolicyResponse, PolicyViolation, RegistryError,
};
use std::collections::{BTreeMap, BTreeSet};

/// Translates [`Job`]s into [`PolicyAction`] plans for one policy.
///
/// A planner may lay the plan itself (against the engine's current shared
/// state) or return `Ok(None)` to defer to the engine's own plan from
/// [`PolicyEngine::begin`] (plan-precomputing policies, rule DT2).
pub trait ActionPlanner {
    /// The access set `job` declares at `begin` (plan-precomputing
    /// policies require it; on-demand policies ignore it).
    fn intent(&self, job: &Job) -> AccessIntent;

    /// Plans the actions realizing `job`, or `Ok(None)` to use the
    /// engine's own precomputed plan.
    ///
    /// The engine is borrowed shared: planners only *read* engine state
    /// (the DDAG planner lays regions over [`PolicyEngine::graph`]), which
    /// lets the threaded runtime plan under a read lock while other
    /// workers' grant decisions proceed.
    fn plan(
        &mut self,
        engine: &dyn PolicyEngine,
        job: &Job,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation>;
}

// ---------------------------------------------------------------------
// Flat-pool planners: 2PL and altruistic
// ---------------------------------------------------------------------

/// Strict 2PL: lock each target on demand in job order, access it, release
/// everything only at commit (the adapter's implicit `finish`).
pub struct TwoPhasePlanner;

impl ActionPlanner for TwoPhasePlanner {
    fn intent(&self, _job: &Job) -> AccessIntent {
        AccessIntent::empty()
    }

    fn plan(
        &mut self,
        _engine: &dyn PolicyEngine,
        job: &Job,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        let mut plan = Vec::with_capacity(job.targets.len() * 2);
        for &t in &job.targets {
            plan.push(PolicyAction::Lock(t));
            plan.push(PolicyAction::Access(t));
        }
        Ok(Some(plan))
    }
}

/// Altruistic locking with eager donation: target `i` is donated as soon
/// as target `i + 1`'s lock is acquired, so short transactions can run in
/// the long transaction's wake.
pub struct AltruisticPlanner;

impl ActionPlanner for AltruisticPlanner {
    fn intent(&self, _job: &Job) -> AccessIntent {
        AccessIntent::empty()
    }

    fn plan(
        &mut self,
        _engine: &dyn PolicyEngine,
        job: &Job,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        let mut plan = Vec::new();
        for (i, &t) in job.targets.iter().enumerate() {
            plan.push(PolicyAction::Lock(t));
            if i == job.targets.len() - 1 {
                plan.push(PolicyAction::LockedPoint);
            }
            if i > 0 {
                // Donate the previous target now that the next lock is held.
                plan.push(PolicyAction::Unlock(job.targets[i - 1]));
            }
            plan.push(PolicyAction::Access(t));
        }
        Ok(Some(plan))
    }
}

// ---------------------------------------------------------------------
// DDAG planner
// ---------------------------------------------------------------------

/// DDAG traversals and structural inserts over the engine's shared rooted
/// DAG.
pub struct DdagPlanner;

impl DdagPlanner {
    /// Plans a traversal: the dominator-closed region covering `targets`,
    /// locked in topological order with crawling release. Planned against
    /// the *current* graph — concurrent structural changes surface later
    /// as policy violations (abort + replan), as in Fig. 3.
    fn plan_traversal(
        g: &DiGraph,
        targets: &[EntityId],
    ) -> Result<Vec<PolicyAction>, PolicyViolation> {
        if targets.is_empty() {
            return Err(PlanViolation::EmptyJob.into());
        }
        let root = rooted::root(g).ok_or(PlanViolation::NotRooted)?;
        for &t in targets {
            if !g.has_node(t) {
                return Err(PlanViolation::TargetMissing(t).into());
            }
        }
        // Lowest common dominator: intersect dominator sets, take the one
        // dominated by all others in the intersection (the largest set).
        let sets = dominators::dominator_sets(g, root);
        let mut common: BTreeSet<EntityId> = sets
            .get(&targets[0])
            .ok_or(PlanViolation::UnreachableFromRoot(targets[0]))?
            .clone();
        for &t in &targets[1..] {
            let s = sets.get(&t).ok_or(PlanViolation::UnreachableFromRoot(t))?;
            common = common.intersection(s).copied().collect();
        }
        let start = common
            .iter()
            .copied()
            .max_by_key(|d| sets[d].len())
            .ok_or(PlanViolation::NoCommonDominator)?;
        // Region: predecessor closure from the targets up to `start`.
        let mut region: BTreeSet<EntityId> = targets.iter().copied().collect();
        region.insert(start);
        let mut frontier: Vec<EntityId> = targets.iter().copied().filter(|&t| t != start).collect();
        while let Some(n) = frontier.pop() {
            for p in g.predecessors(n) {
                if p != start && region.insert(p) {
                    frontier.push(p);
                }
            }
            // `start` dominates everything in the closure (see Lemma 3),
            // so the closure terminates at `start` without passing it.
        }
        // Lock order: global topological order restricted to the region.
        let topo = dag::topological_sort(g).ok_or(PlanViolation::CyclicGraph)?;
        let order: Vec<EntityId> = topo.into_iter().filter(|n| region.contains(n)).collect();
        // Release point of n: after the last region-successor of n is
        // locked (so L5's "presently holding a predecessor" always holds).
        let idx: BTreeMap<EntityId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut release_after: BTreeMap<usize, Vec<EntityId>> = BTreeMap::new();
        for &n in &order {
            let last_succ = g
                .successors(n)
                .filter(|s| region.contains(s))
                .filter_map(|s| idx.get(&s).copied())
                .max();
            let at = last_succ.unwrap_or(idx[&n]);
            release_after.entry(at).or_default().push(n);
        }
        let target_set: BTreeSet<EntityId> = targets.iter().copied().collect();
        let mut plan = Vec::new();
        for (i, &n) in order.iter().enumerate() {
            plan.push(PolicyAction::Lock(n));
            if target_set.contains(&n) {
                plan.push(PolicyAction::Access(n));
            }
            if let Some(done) = release_after.get(&i) {
                for &m in done {
                    plan.push(PolicyAction::Unlock(m));
                }
            }
        }
        Ok(plan)
    }
}

impl ActionPlanner for DdagPlanner {
    fn intent(&self, _job: &Job) -> AccessIntent {
        AccessIntent::empty()
    }

    fn plan(
        &mut self,
        engine: &dyn PolicyEngine,
        job: &Job,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        if let Some(ins) = job.insert_under {
            // Insert a fresh node under an existing parent: lock both (the
            // fresh node per L2), mutate, release.
            return Ok(Some(vec![
                PolicyAction::Lock(ins.parent),
                PolicyAction::Lock(ins.node),
                PolicyAction::InsertNode(ins.node),
                PolicyAction::InsertEdge(ins.parent, ins.node),
                PolicyAction::Unlock(ins.parent),
                PolicyAction::Unlock(ins.node),
            ]));
        }
        let g = engine.graph().ok_or(PlanViolation::NoGraph)?;
        Self::plan_traversal(g, &job.targets).map(Some)
    }
}

// ---------------------------------------------------------------------
// DTR planner
// ---------------------------------------------------------------------

/// Dynamic tree policy: declares the access set and defers planning to the
/// engine, which joins/extends the forest and precomputes the tree-locked
/// plan (rule DT2).
pub struct DtrPlanner;

impl ActionPlanner for DtrPlanner {
    fn intent(&self, job: &Job) -> AccessIntent {
        AccessIntent::access(job.targets.iter().copied())
    }

    fn plan(
        &mut self,
        _engine: &dyn PolicyEngine,
        _job: &Job,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        Ok(None)
    }
}

// ---------------------------------------------------------------------
// The generic adapter
// ---------------------------------------------------------------------

/// The one simulator adapter: any [`PolicyEngine`] plus the matching
/// [`ActionPlanner`], with per-transaction plan cursors.
pub struct EngineAdapter<P: PolicyEngine + 'static> {
    engine: P,
    planner: Box<dyn ActionPlanner>,
    plans: FxHashMap<TxId, (Vec<PolicyAction>, usize)>,
    pool: Vec<EntityId>,
}

/// The adapter shape the [`PolicyRegistry`] produces: a boxed engine
/// behind the generic adapter.
pub type PolicyInstance = EngineAdapter<Box<dyn PolicyEngine>>;

/// The planner matching a [`PolicyKind`] (mutants share their base
/// policy's planner — the ablated *engine* is what differs).
pub fn planner_for(kind: PolicyKind) -> Box<dyn ActionPlanner> {
    match kind.base() {
        PolicyKind::TwoPhase => Box::new(TwoPhasePlanner),
        PolicyKind::Altruistic => Box::new(AltruisticPlanner),
        PolicyKind::Ddag => Box::new(DdagPlanner),
        PolicyKind::Dtr => Box::new(DtrPlanner),
        mutant => unreachable!("PolicyKind::base returns safe kinds, got {mutant}"),
    }
}

/// Builds the simulator adapter for `kind` through `registry`: the engine
/// from the registry, the matching planner, and the initial pool from
/// `config` (for the initial structural state of flat-pool policies).
pub fn build_adapter(
    registry: &PolicyRegistry,
    kind: PolicyKind,
    config: &PolicyConfig,
) -> Result<PolicyInstance, RegistryError> {
    let engine = registry.build(kind, config)?;
    Ok(EngineAdapter::new(
        engine,
        planner_for(kind),
        config.pool.clone(),
    ))
}

impl<P: PolicyEngine + 'static> EngineAdapter<P> {
    /// An adapter over `engine` driven by `planner`. `pool` is the set of
    /// initially existing entities for policies that do not track
    /// existence themselves (see [`EngineAdapter::initial_state`]).
    pub fn new(engine: P, planner: Box<dyn ActionPlanner>, pool: Vec<EntityId>) -> Self {
        EngineAdapter {
            engine,
            planner,
            plans: FxHashMap::default(),
            pool,
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &P {
        &self.engine
    }

    /// The wrapped engine, mutably (for policy-specific introspection).
    pub fn engine_mut(&mut self) -> &mut P {
        &mut self.engine
    }

    /// Interns a fresh entity name through the engine (DDAG insert
    /// workloads); `None` if the policy has no growing universe.
    pub fn intern(&mut self, name: &str) -> Option<EntityId> {
        self.engine.intern_entity(name)
    }

    /// The engine's shared graph, if it maintains one.
    pub fn graph(&self) -> Option<&DiGraph> {
        self.engine.graph()
    }

    /// The initial structural state for properness checks: the engine's
    /// own existence tracking when present (DDAG: nodes + edge entities),
    /// else the flat pool. Capture *before* running jobs.
    pub fn initial_state(&self) -> StructuralState {
        match self.engine.structural_entities() {
            Some(entities) => StructuralState::from_entities(entities),
            None => StructuralState::from_entities(self.pool.iter().copied()),
        }
    }
}

impl<P: PolicyEngine + 'static> PolicyAdapter for EngineAdapter<P> {
    fn name(&self) -> &'static str {
        self.engine.name()
    }

    fn begin(&mut self, tx: TxId, job: &Job) -> Result<(), PolicyViolation> {
        // Plan first: a malformed job must not leave begun-but-planless
        // transaction state in the engine.
        let planned = self.planner.plan(&self.engine, job)?;
        let intent = self.planner.intent(job);
        let engine_plan = self.engine.begin(tx, &intent)?;
        let plan = match planned.or(engine_plan) {
            Some(plan) => plan,
            None => {
                // Misconfigured pairing (neither planner nor engine
                // produced a plan): retire the just-begun transaction so
                // the engine holds no planless state.
                self.engine.abort(tx);
                return Err(PolicyViolation::NoPlan(tx));
            }
        };
        self.plans.insert(tx, (plan, 0));
        Ok(())
    }

    fn advance(&mut self, tx: TxId) -> Advance {
        let Some((plan, cursor)) = self.plans.get_mut(&tx) else {
            return Advance::Violation(PolicyViolation::NoPlan(tx));
        };
        let Some(&action) = plan.get(*cursor) else {
            self.plans.remove(&tx);
            return match self.engine.finish(tx) {
                Ok(steps) => Advance::Done(steps),
                Err(v) => Advance::Violation(v),
            };
        };
        match self.engine.request(tx, action) {
            PolicyResponse::Granted(steps) => {
                *cursor += 1;
                Advance::Progress(steps)
            }
            PolicyResponse::Conflict { entity, holder } => Advance::Blocked { entity, holder },
            PolicyResponse::Violation(v) => Advance::Violation(v),
        }
    }

    fn abort(&mut self, tx: TxId) -> Vec<Step> {
        self.plans.remove(&tx);
        self.engine.abort(tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::Universe;
    use slp_policies::DtrEngine;

    fn pool(n: u32) -> Vec<EntityId> {
        (0..n).map(EntityId).collect()
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    fn flat(kind: PolicyKind, n: u32) -> PolicyInstance {
        build_adapter(&PolicyRegistry::new(), kind, &PolicyConfig::flat(pool(n))).unwrap()
    }

    fn drain(adapter: &mut dyn PolicyAdapter, tx: TxId) -> Vec<Step> {
        let mut all = Vec::new();
        loop {
            match adapter.advance(tx) {
                Advance::Progress(s) => all.extend(s),
                Advance::Done(s) => {
                    all.extend(s);
                    return all;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn two_phase_adapter_runs_a_job() {
        let mut a = flat(PolicyKind::TwoPhase, 4);
        assert_eq!(a.name(), "2PL");
        a.begin(t(1), &Job::access(vec![EntityId(0), EntityId(2)]))
            .unwrap();
        let steps = drain(&mut a, t(1));
        // 2 locks + 2*(R+W) + 2 unlocks
        assert_eq!(steps.len(), 8);
        let lt = slp_core::LockedTransaction::new(t(1), steps);
        assert!(lt.validate().is_ok());
        assert!(lt.is_two_phase(), "strict 2PL output must be two-phase");
    }

    #[test]
    fn two_phase_adapter_blocks_on_conflict() {
        let mut a = flat(PolicyKind::TwoPhase, 2);
        a.begin(t(1), &Job::access(vec![EntityId(0)])).unwrap();
        a.begin(t(2), &Job::access(vec![EntityId(0)])).unwrap();
        assert!(matches!(a.advance(t(1)), Advance::Progress(_))); // T1 locks 0
        assert_eq!(
            a.advance(t(2)),
            Advance::Blocked {
                entity: EntityId(0),
                holder: t(1)
            }
        );
        let _ = a.abort(t(2));
    }

    #[test]
    fn altruistic_adapter_donates_early() {
        let mut a = flat(PolicyKind::Altruistic, 4);
        a.begin(
            t(1),
            &Job::access(vec![EntityId(0), EntityId(1), EntityId(2)]),
        )
        .unwrap();
        let steps = drain(&mut a, t(1));
        let lt = slp_core::LockedTransaction::new(t(1), steps.clone());
        assert!(lt.validate().is_ok());
        assert!(
            !lt.is_two_phase(),
            "altruistic plans donate before the locked point"
        );
        // Unlock of entity 0 comes before the access of entity 2.
        let pos_unlock0 = steps
            .iter()
            .position(|s| *s == Step::unlock_exclusive(EntityId(0)))
            .unwrap();
        let pos_access2 = steps
            .iter()
            .position(|s| *s == Step::read(EntityId(2)))
            .unwrap();
        assert!(pos_unlock0 < pos_access2);
    }

    fn diamond_adapter() -> (PolicyInstance, Vec<EntityId>) {
        // Diamond r -> {a, b} -> j.
        let mut u = Universe::new();
        let ids = u.entities(["r", "a", "b", "j"]);
        let mut g = DiGraph::new();
        for &n in &ids {
            g.add_node(n).unwrap();
        }
        g.add_edge(ids[0], ids[1]).unwrap();
        g.add_edge(ids[0], ids[2]).unwrap();
        g.add_edge(ids[1], ids[3]).unwrap();
        g.add_edge(ids[2], ids[3]).unwrap();
        let adapter = build_adapter(
            &PolicyRegistry::new(),
            PolicyKind::Ddag,
            &PolicyConfig::dag(u, g),
        )
        .unwrap();
        (adapter, ids)
    }

    #[test]
    fn ddag_single_target_locks_only_the_target() {
        // L4: a transaction may begin by locking any node, so a job that
        // only touches the join node needs exactly one lock.
        let (mut a, ids) = diamond_adapter();
        a.begin(t(1), &Job::access(vec![ids[3]])).unwrap();
        let steps = drain(&mut a, t(1));
        let locked: Vec<EntityId> = steps
            .iter()
            .filter(|s| s.is_lock())
            .map(|s| s.entity)
            .collect();
        assert_eq!(locked, vec![ids[3]]);
    }

    #[test]
    fn ddag_multi_target_closes_the_dominator_region() {
        // Accessing {a, j} forces start at the common dominator r, and the
        // predecessor closure pulls in b (all of j's predecessors must be
        // locked before j, per L5).
        let (mut a, ids) = diamond_adapter();
        a.begin(t(1), &Job::access(vec![ids[1], ids[3]])).unwrap();
        let steps = drain(&mut a, t(1));
        let mut locked: Vec<EntityId> = steps
            .iter()
            .filter(|s| s.is_lock())
            .map(|s| s.entity)
            .collect();
        assert_eq!(locked[0], ids[0], "start at the common dominator r");
        assert_eq!(
            *locked.last().unwrap(),
            ids[3],
            "join j locked after its preds"
        );
        locked.sort_unstable();
        assert_eq!(locked, vec![ids[0], ids[1], ids[2], ids[3]]);
        let lt = slp_core::LockedTransaction::new(t(1), steps);
        assert!(lt.validate().is_ok());
        // Crawling: r is released before the transaction ends.
        let pos_unlock_r = lt
            .steps
            .iter()
            .position(|s| *s == Step::unlock_exclusive(ids[0]))
            .expect("r released");
        assert!(pos_unlock_r < lt.steps.len() - 1);
    }

    #[test]
    fn ddag_adapter_insert_job() {
        let mut u = Universe::new();
        let ids = u.entities(["r", "a"]);
        let mut g = DiGraph::new();
        g.add_node(ids[0]).unwrap();
        g.add_node(ids[1]).unwrap();
        g.add_edge(ids[0], ids[1]).unwrap();
        let mut a = build_adapter(
            &PolicyRegistry::new(),
            PolicyKind::Ddag,
            &PolicyConfig::dag(u, g),
        )
        .unwrap();
        let fresh = a.intern("new-node").expect("DDAG interns");
        a.begin(t(1), &Job::insert(ids[1], fresh)).unwrap();
        let steps = drain(&mut a, t(1));
        let g = a.graph().expect("DDAG has a graph");
        assert!(g.has_node(fresh));
        assert!(g.has_edge(ids[1], fresh));
        let lt = slp_core::LockedTransaction::new(t(1), steps);
        assert!(lt.validate().is_ok());
    }

    #[test]
    fn ddag_malformed_jobs_surface_typed_plan_errors() {
        let (mut a, _) = diamond_adapter();
        let err = a
            .begin(t(1), &Job::access(vec![EntityId(999)]))
            .unwrap_err();
        assert_eq!(
            err,
            PolicyViolation::Plan(PlanViolation::TargetMissing(EntityId(999)))
        );
        assert!(
            !err.is_fatal(),
            "graph-shape plan failures are transient under churn"
        );
        let err = a.begin(t(1), &Job::access(vec![])).unwrap_err();
        assert_eq!(err, PolicyViolation::Plan(PlanViolation::EmptyJob));
        assert!(err.is_fatal(), "an empty job can never commit work");
    }

    #[test]
    fn dtr_adapter_runs_jobs_and_grows_forest() {
        let mut a = flat(PolicyKind::Dtr, 5);
        a.begin(t(1), &Job::access(vec![EntityId(0), EntityId(1)]))
            .unwrap();
        let steps = drain(&mut a, t(1));
        assert!(!steps.is_empty());
        let dtr: &DtrEngine = a
            .engine()
            .as_any()
            .downcast_ref()
            .expect("registry builds a DtrEngine for PolicyKind::Dtr");
        assert_eq!(dtr.forest().len(), 2);
        let lt = slp_core::LockedTransaction::new(t(1), steps);
        assert!(lt.validate().is_ok());
    }

    #[test]
    fn dtr_adapter_blocks_on_contention() {
        let mut a = flat(PolicyKind::Dtr, 3);
        a.begin(t(1), &Job::access(vec![EntityId(0)])).unwrap();
        assert!(matches!(a.advance(t(1)), Advance::Progress(_))); // lock 0
        a.begin(t(2), &Job::access(vec![EntityId(0)])).unwrap();
        assert!(matches!(a.advance(t(2)), Advance::Blocked { .. }));
        let _ = a.abort(t(2));
    }

    #[test]
    fn mutant_kinds_build_and_report_their_names() {
        for kind in PolicyKind::MUTANTS {
            let config = if kind.needs_graph() {
                let mut u = Universe::new();
                let ids = u.entities(["r", "x"]);
                let mut g = DiGraph::new();
                g.add_node(ids[0]).unwrap();
                g.add_node(ids[1]).unwrap();
                g.add_edge(ids[0], ids[1]).unwrap();
                PolicyConfig::dag(u, g)
            } else {
                PolicyConfig::flat(pool(4))
            };
            let a = build_adapter(&PolicyRegistry::new(), kind, &config).unwrap();
            assert_eq!(a.name(), kind.name());
        }
    }

    #[test]
    fn advancing_an_unknown_transaction_is_a_fatal_no_plan() {
        let mut a = flat(PolicyKind::TwoPhase, 2);
        match a.advance(t(9)) {
            Advance::Violation(v) => assert!(v.is_fatal()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
