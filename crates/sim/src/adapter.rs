//! The adapter interface between the simulator and the policy engines.
//!
//! An adapter wraps one [`slp_policies::PolicyEngine`], translates
//! [`Job`]s into the engine's action vocabulary, and reports per-step
//! outcomes the scheduler can act on: progress, blocked-on-a-lock (wait),
//! or a typed policy violation (abort and restart — e.g. the Fig. 3
//! scenario where an edge insert invalidates a traversal's lock plan).
//! See [`crate::adapters::EngineAdapter`] for the one implementation.

use crate::job::Job;
use slp_core::{EntityId, Step, TxId};
use slp_policies::PolicyViolation;

/// The outcome of attempting to advance a transaction by one action.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Advance {
    /// The action ran; these steps were emitted.
    Progress(Vec<Step>),
    /// The next action needs a lock currently held by `holder`.
    Blocked {
        /// The contended entity.
        entity: EntityId,
        /// The transaction holding it.
        holder: TxId,
    },
    /// The policy forbids the next action outright. The scheduler
    /// classifies the violation by matching on the enum —
    /// [`PolicyViolation::is_fatal`] separates retryable rule violations
    /// (abort and restart as a fresh transaction) from malformed requests
    /// (drop the job).
    Violation(PolicyViolation),
    /// The transaction finished; these final steps (unlocks) were emitted.
    Done(Vec<Step>),
}

/// How a scheduler disposes of an attempt that ended in a
/// [`PolicyViolation`]. This is the one shared abort-classification rule:
/// the discrete-event simulator ([`crate::run_sim`]) and the threaded
/// runtime (`slp-runtime`) both key off it, so "fatal → drop the job,
/// transient → abort and restart as a fresh transaction" cannot drift
/// between the two schedulers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Disposition {
    /// The request itself is malformed ([`PolicyViolation::is_fatal`]):
    /// retrying can never succeed, drop the job and count it rejected.
    Reject,
    /// Transient rule state (e.g. a Fig. 3 plan invalidation): abort and
    /// restart the job as a fresh transaction after backoff.
    Retry,
}

impl Disposition {
    /// Classifies a violation. Matches on the enum, never on message text.
    pub fn of(v: &PolicyViolation) -> Disposition {
        if v.is_fatal() {
            Disposition::Reject
        } else {
            Disposition::Retry
        }
    }
}

/// A locking policy as seen by the simulator.
pub trait PolicyAdapter {
    /// Human-readable policy name (rows of the E9 tables).
    fn name(&self) -> &'static str;

    /// Starts a transaction for `job`. The adapter may precompute a plan
    /// against the current shared state; planning failures and engine
    /// refusals surface as typed violations.
    fn begin(&mut self, tx: TxId, job: &Job) -> Result<(), PolicyViolation>;

    /// Attempts the next action of `tx`.
    fn advance(&mut self, tx: TxId) -> Advance;

    /// Aborts `tx`, releasing all its locks; returns the unlock steps.
    fn abort(&mut self, tx: TxId) -> Vec<Step>;
}
