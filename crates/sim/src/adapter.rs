//! The adapter interface between the simulator and the policy engines.
//!
//! Each adapter wraps one policy engine, translates [`Job`]s into the
//! engine's lock/data/unlock actions, and reports per-step outcomes the
//! scheduler can act on: progress, blocked-on-a-lock (wait), or a policy
//! violation (abort and restart — e.g. the Fig. 3 scenario where an edge
//! insert invalidates a traversal's lock plan).

use crate::job::Job;
use slp_core::{EntityId, Step, TxId};

/// The outcome of attempting to advance a transaction by one action.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Advance {
    /// The action ran; these steps were emitted.
    Progress(Vec<Step>),
    /// The next action needs a lock currently held by `holder`.
    Blocked {
        /// The contended entity.
        entity: EntityId,
        /// The transaction holding it.
        holder: TxId,
    },
    /// The policy forbids the next action outright (the transaction must
    /// abort and retry as a fresh transaction).
    Violation(String),
    /// The transaction finished; these final steps (unlocks) were emitted.
    Done(Vec<Step>),
}

/// A locking policy as seen by the simulator.
pub trait PolicyAdapter {
    /// Human-readable policy name (rows of the E9 tables).
    fn name(&self) -> &'static str;

    /// Starts a transaction for `job`. The adapter may precompute a plan
    /// against the current shared state. Fails only on malformed jobs.
    fn begin(&mut self, tx: TxId, job: &Job) -> Result<(), String>;

    /// Attempts the next action of `tx`.
    fn advance(&mut self, tx: TxId) -> Advance;

    /// Aborts `tx`, releasing all its locks; returns the unlock steps.
    fn abort(&mut self, tx: TxId) -> Vec<Step>;
}
