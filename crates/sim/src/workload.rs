//! Workload generators (the synthetic stand-ins for the knowledge-base
//! workloads of the paper's motivating applications — see DESIGN.md §5).
//!
//! All generators are seeded and deterministic.

use crate::job::Job;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slp_core::{EntityId, Universe};
use slp_graph::DiGraph;

/// A layered rooted DAG: one root, `layers` layers of `width` nodes, each
/// non-root node with 1..=`max_parents` parents drawn from the previous
/// layer. This is the synthetic part–subpart object graph used by the DDAG
/// experiments.
pub struct LayeredDag {
    /// Entity names for all nodes.
    pub universe: Universe,
    /// The graph.
    pub graph: DiGraph,
    /// The root node.
    pub root: EntityId,
    /// All nodes by layer (`nodes[0] = [root]`).
    pub nodes: Vec<Vec<EntityId>>,
}

/// Builds a layered rooted DAG.
pub fn layered_dag(layers: usize, width: usize, max_parents: usize, seed: u64) -> LayeredDag {
    assert!(layers >= 1 && width >= 1 && max_parents >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut universe = Universe::new();
    let mut graph = DiGraph::new();
    let root = universe.entity("root");
    graph.add_node(root).expect("fresh");
    let mut nodes = vec![vec![root]];
    for layer in 1..layers {
        let mut this_layer = Vec::with_capacity(width);
        for i in 0..width {
            let n = universe.entity(&format!("n{layer}_{i}"));
            graph.add_node(n).expect("fresh");
            let prev = &nodes[layer - 1];
            let parents = rng.random_range(1..=max_parents.min(prev.len()));
            let mut chosen: Vec<usize> = (0..prev.len()).collect();
            for _ in 0..(prev.len() - parents) {
                chosen.swap_remove(rng.random_range(0..chosen.len()));
            }
            for pi in chosen {
                graph
                    .add_edge(prev[pi], n)
                    .expect("layer edges are acyclic");
            }
            this_layer.push(n);
        }
        nodes.push(this_layer);
    }
    LayeredDag {
        universe,
        graph,
        root,
        nodes,
    }
}

/// Jobs over a flat entity pool: each accesses `per_job` distinct random
/// entities (in random order — so lock-order deadlocks can occur under
/// policies that lock on demand).
pub fn uniform_jobs(pool: &[EntityId], count: usize, per_job: usize, seed: u64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let k = per_job.min(pool.len());
            let mut remaining: Vec<EntityId> = pool.to_vec();
            let mut targets = Vec::with_capacity(k);
            for _ in 0..k {
                let i = rng.random_range(0..remaining.len());
                targets.push(remaining.swap_remove(i));
            }
            Job::access(targets)
        })
        .collect()
}

/// Jobs mixing one long transaction over a large span with short ones —
/// the altruistic-locking scenario \[SGMS94\]: the long transaction scans
/// `long_len` entities in id order; short jobs touch `short_len` random
/// entities.
pub fn long_short_jobs(
    pool: &[EntityId],
    long_len: usize,
    short_count: usize,
    short_len: usize,
    seed: u64,
) -> Vec<Job> {
    let mut jobs = vec![Job::access(pool[..long_len.min(pool.len())].to_vec())];
    jobs.extend(uniform_jobs(pool, short_count, short_len, seed));
    jobs
}

/// DAG traversal jobs: each accesses `targets_per_job` random nodes (the
/// DDAG adapter closes them into a dominator region).
pub fn dag_access_jobs(
    dag: &LayeredDag,
    count: usize,
    targets_per_job: usize,
    seed: u64,
) -> Vec<Job> {
    let all: Vec<EntityId> = dag.nodes.iter().flatten().copied().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let k = targets_per_job.min(all.len());
            let mut remaining = all.clone();
            let mut targets = Vec::with_capacity(k);
            for _ in 0..k {
                let i = rng.random_range(0..remaining.len());
                targets.push(remaining.swap_remove(i));
            }
            Job::access(targets)
        })
        .collect()
}

/// A mix of DAG traversals and node insertions (the *dynamic* part of the
/// DDAG workload): with probability `insert_prob` a job inserts a fresh
/// node under a random existing node. Fresh node names are interned
/// through `intern` (the DDAG adapter's universe).
pub fn dag_mixed_jobs(
    dag: &LayeredDag,
    count: usize,
    targets_per_job: usize,
    insert_prob: f64,
    intern: &mut dyn FnMut(&str) -> EntityId,
    seed: u64,
) -> Vec<Job> {
    let all: Vec<EntityId> = dag.nodes.iter().flatten().copied().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fresh = 0usize;
    (0..count)
        .map(|_| {
            if rng.random_bool(insert_prob) {
                let parent = all[rng.random_range(0..all.len())];
                fresh += 1;
                let node = intern(&format!("fresh_{fresh}"));
                Job::insert(parent, node)
            } else {
                let k = targets_per_job.min(all.len());
                let mut remaining = all.clone();
                let mut targets = Vec::with_capacity(k);
                for _ in 0..k {
                    let i = rng.random_range(0..remaining.len());
                    targets.push(remaining.swap_remove(i));
                }
                Job::access(targets)
            }
        })
        .collect()
}

/// Large-contention jobs over a flat pool: each target is drawn from the
/// first `hot` entities of `pool` with probability `hot_prob`, else
/// uniformly from the whole pool. With a small hot set and high
/// `hot_prob`, most jobs collide on the hot entities — the E9-style
/// "many transactions, few hot objects" regime that stresses lock queues,
/// wakes, and abort/restart paths.
pub fn hot_cold_jobs(
    pool: &[EntityId],
    count: usize,
    per_job: usize,
    hot: usize,
    hot_prob: f64,
    seed: u64,
) -> Vec<Job> {
    assert!(hot >= 1 && hot <= pool.len(), "hot set must be within pool");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let k = per_job.min(pool.len());
            let mut targets: Vec<EntityId> = Vec::with_capacity(k);
            for _ in 0..k {
                let from_hot = rng.random_bool(hot_prob);
                let source = if from_hot { &pool[..hot] } else { pool };
                let fresh: Vec<EntityId> = source
                    .iter()
                    .copied()
                    .filter(|e| !targets.contains(e))
                    .collect();
                let fresh = if fresh.is_empty() {
                    // Hot set exhausted: fall back to the whole pool so the
                    // job still reaches `per_job` distinct targets.
                    pool.iter()
                        .copied()
                        .filter(|e| !targets.contains(e))
                        .collect()
                } else {
                    fresh
                };
                targets.push(fresh[rng.random_range(0..fresh.len())]);
            }
            Job::access(targets)
        })
        .collect()
}

/// A read-heavy mix over a flat pool: with probability `read_prob`
/// (≈0.95 for the canonical 95/5 split) a job is **read-only** over
/// hot-set-biased targets, otherwise it is an ordinary writer job with
/// the same bias. Read targets come from the initial pool, which flat
/// workloads never delete, so snapshot reads stay proper; a runtime with
/// MVCC snapshot reads enabled serves the read-only jobs without touching
/// the lock service, while everywhere else they run as locked accesses —
/// the same job list thus benchmarks both read paths.
pub fn read_heavy_jobs(
    pool: &[EntityId],
    count: usize,
    per_job: usize,
    hot: usize,
    read_prob: f64,
    seed: u64,
) -> Vec<Job> {
    assert!(hot >= 1 && hot <= pool.len(), "hot set must be within pool");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let read_only = rng.random_bool(read_prob);
            let k = per_job.min(pool.len());
            let mut targets: Vec<EntityId> = Vec::with_capacity(k);
            for _ in 0..k {
                let source = if rng.random_bool(0.9) {
                    &pool[..hot]
                } else {
                    pool
                };
                let fresh: Vec<EntityId> = source
                    .iter()
                    .copied()
                    .filter(|e| !targets.contains(e))
                    .collect();
                let fresh = if fresh.is_empty() {
                    pool.iter()
                        .copied()
                        .filter(|e| !targets.contains(e))
                        .collect()
                } else {
                    fresh
                };
                targets.push(fresh[rng.random_range(0..fresh.len())]);
            }
            if read_only {
                Job::read(targets)
            } else {
                Job::access(targets)
            }
        })
        .collect()
}

/// Deep-traversal DAG jobs: every target is drawn from the *deepest* layer
/// of the DAG, so the DDAG planner's dominator closure pulls in long
/// predecessor chains back to the common dominator — the traversals lock
/// large, heavily overlapping regions (the large-contention counterpart of
/// [`dag_access_jobs`]).
pub fn deep_dag_jobs(
    dag: &LayeredDag,
    count: usize,
    targets_per_job: usize,
    seed: u64,
) -> Vec<Job> {
    let deepest: &[EntityId] = dag.nodes.last().expect("at least the root layer");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let k = targets_per_job.min(deepest.len());
            let mut remaining: Vec<EntityId> = deepest.to_vec();
            let mut targets = Vec::with_capacity(k);
            for _ in 0..k {
                let i = rng.random_range(0..remaining.len());
                targets.push(remaining.swap_remove(i));
            }
            Job::access(targets)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_graph::{dag, rooted};

    #[test]
    fn layered_dag_is_rooted_and_acyclic() {
        for seed in 0..5 {
            let d = layered_dag(4, 3, 2, seed);
            assert!(dag::is_acyclic(&d.graph));
            assert_eq!(rooted::root(&d.graph), Some(d.root));
            assert_eq!(d.graph.node_count(), 1 + 3 * 3);
        }
    }

    #[test]
    fn uniform_jobs_have_distinct_targets() {
        let pool: Vec<EntityId> = (0..10).map(EntityId).collect();
        let jobs = uniform_jobs(&pool, 20, 4, 7);
        assert_eq!(jobs.len(), 20);
        for j in &jobs {
            let mut t = j.targets.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), 4, "targets must be distinct");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let pool: Vec<EntityId> = (0..10).map(EntityId).collect();
        assert_eq!(uniform_jobs(&pool, 5, 3, 42), uniform_jobs(&pool, 5, 3, 42));
        let a = layered_dag(3, 3, 2, 9);
        let b = layered_dag(3, 3, 2, 9);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn long_short_shape() {
        let pool: Vec<EntityId> = (0..20).map(EntityId).collect();
        let jobs = long_short_jobs(&pool, 10, 5, 2, 1);
        assert_eq!(jobs.len(), 6);
        assert_eq!(jobs[0].targets.len(), 10);
        assert!(jobs[1..].iter().all(|j| j.targets.len() == 2));
    }

    #[test]
    fn hot_cold_jobs_concentrate_on_the_hot_set() {
        let pool: Vec<EntityId> = (0..64).map(EntityId).collect();
        let jobs = hot_cold_jobs(&pool, 100, 3, 4, 0.9, 11);
        assert_eq!(jobs.len(), 100);
        let mut hot_touches = 0usize;
        let mut total = 0usize;
        for j in &jobs {
            let mut t = j.targets.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), 3, "targets must be distinct");
            total += j.targets.len();
            hot_touches += j.targets.iter().filter(|e| e.0 < 4).count();
        }
        assert!(
            hot_touches * 2 > total,
            "most touches must land on the hot set ({hot_touches}/{total})"
        );
        // Determinism.
        assert_eq!(jobs, hot_cold_jobs(&pool, 100, 3, 4, 0.9, 11));
    }

    #[test]
    fn hot_cold_jobs_survive_tiny_hot_sets() {
        // per_job > hot: the fallback draw must keep targets distinct.
        let pool: Vec<EntityId> = (0..8).map(EntityId).collect();
        for j in hot_cold_jobs(&pool, 50, 4, 1, 1.0, 3) {
            let mut t = j.targets.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), 4);
        }
    }

    #[test]
    fn read_heavy_jobs_are_mostly_reads_on_the_hot_set() {
        let pool: Vec<EntityId> = (0..64).map(EntityId).collect();
        let jobs = read_heavy_jobs(&pool, 200, 3, 4, 0.95, 13);
        assert_eq!(jobs.len(), 200);
        let reads = jobs.iter().filter(|j| j.read_only).count();
        assert!(
            reads > 160 && reads < 200,
            "95/5 split should be read-dominated but not pure ({reads}/200)"
        );
        let mut hot_touches = 0usize;
        let mut total = 0usize;
        for j in &jobs {
            let mut t = j.targets.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), 3, "targets must be distinct");
            total += j.targets.len();
            hot_touches += j.targets.iter().filter(|e| e.0 < 4).count();
        }
        assert!(
            hot_touches * 2 > total,
            "hot-set bias ({hot_touches}/{total})"
        );
        assert_eq!(jobs, read_heavy_jobs(&pool, 200, 3, 4, 0.95, 13));
    }

    #[test]
    fn deep_dag_jobs_target_the_deepest_layer() {
        let d = layered_dag(5, 4, 2, 2);
        let deepest: Vec<EntityId> = d.nodes.last().unwrap().clone();
        let jobs = deep_dag_jobs(&d, 30, 2, 9);
        assert_eq!(jobs.len(), 30);
        for j in &jobs {
            assert_eq!(j.targets.len(), 2);
            for t in &j.targets {
                assert!(deepest.contains(t), "{t} not in the deepest layer");
            }
        }
        assert_eq!(jobs, deep_dag_jobs(&d, 30, 2, 9));
    }

    #[test]
    fn mixed_jobs_include_inserts() {
        let d = layered_dag(3, 3, 2, 0);
        let mut names = Vec::new();
        let mut next = 1000u32;
        let mut intern = |name: &str| {
            names.push(name.to_owned());
            next += 1;
            EntityId(next)
        };
        let jobs = dag_mixed_jobs(&d, 30, 2, 0.4, &mut intern, 5);
        let inserts = jobs.iter().filter(|j| j.insert_under.is_some()).count();
        assert!(inserts > 0 && inserts < 30);
        assert_eq!(names.len(), inserts);
    }
}
