//! Jobs: the workload unit handed to a policy adapter.
//!
//! A job describes *what* a transaction wants (entities to `ACCESS`,
//! optionally a structural mutation); the policy adapter decides *how* to
//! lock for it. Using one job type for every policy keeps the E9
//! comparison apples-to-apples.

use slp_core::EntityId;

/// A unit of work for one transaction.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Job {
    /// Entities to `ACCESS` (read + write), in the given order.
    pub targets: Vec<EntityId>,
    /// Optional structural mutation (DDAG workloads): insert a fresh node
    /// under an existing parent, connected by a fresh edge.
    pub insert_under: Option<InsertUnder>,
    /// The job only *reads* its targets. A runtime with MVCC snapshot
    /// reads enabled serves such a job from a snapshot without touching
    /// the lock service at all; everywhere else it runs as an ordinary
    /// locked access (the read-path baseline).
    pub read_only: bool,
}

/// Insert `node` as a new child of `parent`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InsertUnder {
    /// The existing parent node.
    pub parent: EntityId,
    /// The fresh node to insert.
    pub node: EntityId,
}

impl Job {
    /// A job accessing the given targets.
    pub fn access(targets: Vec<EntityId>) -> Self {
        Job {
            targets,
            insert_under: None,
            read_only: false,
        }
    }

    /// A read-only job over the given targets (eligible for the MVCC
    /// snapshot read path).
    pub fn read(targets: Vec<EntityId>) -> Self {
        Job {
            targets,
            insert_under: None,
            read_only: true,
        }
    }

    /// A job inserting `node` under `parent` (and accessing nothing else).
    pub fn insert(parent: EntityId, node: EntityId) -> Self {
        Job {
            targets: Vec::new(),
            insert_under: Some(InsertUnder { parent, node }),
            read_only: false,
        }
    }

    /// Total number of data touches the job performs.
    pub fn size(&self) -> usize {
        self.targets.len() + usize::from(self.insert_under.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let j = Job::access(vec![EntityId(1), EntityId(2)]);
        assert_eq!(j.size(), 2);
        assert!(j.insert_under.is_none());
        assert!(!j.read_only);
        let j = Job::insert(EntityId(1), EntityId(9));
        assert_eq!(j.size(), 1);
        assert_eq!(j.insert_under.unwrap().parent, EntityId(1));
        let j = Job::read(vec![EntityId(3)]);
        assert!(j.read_only);
        assert_eq!(j.size(), 1);
    }
}
