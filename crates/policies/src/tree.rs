//! Tree locking — the planner and validator for tree-protocol lock
//! sequences \[SK80\], shared by the static tree policy and the dynamic
//! tree (DTR) policy of Section 6.
//!
//! A well-formed transaction `T` is **tree-locked** with respect to a tree
//! `g` if each `(LX A)` step, except the first, is preceded by a lock step
//! `(LX B)` and followed by an unlock step `(U B)` where `B` is the
//! predecessor (parent) of `A` in `g`; and `T` locks an entity at most
//! once.

use slp_core::{DataOp, EntityId, Operation, Step};
use slp_graph::Forest;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why a tree-lock plan could not be produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PlanError {
    /// No targets were given.
    NoTargets,
    /// A target is not in the forest.
    TargetNotInForest(EntityId),
    /// Targets span multiple trees (the caller must join them first —
    /// rule DT1/DT2 in the dynamic tree policy).
    TargetsSpanTrees(EntityId, EntityId),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoTargets => write!(f, "no target entities"),
            PlanError::TargetNotInForest(e) => write!(f, "target {e} is not in the forest"),
            PlanError::TargetsSpanTrees(a, b) => {
                write!(f, "targets {a} and {b} lie in different trees")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Produces a tree-locked step sequence that performs `ops` (per entity)
/// on a single tree of `forest`.
///
/// The plan starts at the lowest common ancestor of the targets and crawls
/// down the covering subtree: each node is locked while its parent is still
/// held, performs its data operations, locks its needed children, and is
/// then released — so locks migrate down the tree (the concurrency the
/// tree protocol is known for).
pub fn tree_lock_plan(
    forest: &Forest,
    ops: &BTreeMap<EntityId, Vec<DataOp>>,
) -> Result<Vec<Step>, PlanError> {
    let targets: Vec<EntityId> = ops.keys().copied().collect();
    let (&first, rest) = targets.split_first().ok_or(PlanError::NoTargets)?;
    for &t in std::iter::once(&first).chain(rest) {
        if !forest.contains(t) {
            return Err(PlanError::TargetNotInForest(t));
        }
    }
    for &t in rest {
        if forest.root_of(t) != forest.root_of(first) {
            return Err(PlanError::TargetsSpanTrees(first, t));
        }
    }
    // Start node: the LCA of all targets.
    let mut start = first;
    for &t in rest {
        start = forest.lca(start, t).expect("same tree");
    }
    // Covering subtree: union of paths start -> target.
    let mut cover: BTreeSet<EntityId> = BTreeSet::new();
    for &t in &targets {
        let path = forest.path_from_root(t).expect("target in forest");
        let from = path
            .iter()
            .position(|&n| n == start)
            .expect("start is an ancestor");
        cover.extend(&path[from..]);
    }

    let mut plan = vec![Step::lock_exclusive(start)];
    // Iterative wavefront: lock children while the parent is held, then
    // release the parent, then descend.
    let mut queue = vec![start];
    while let Some(n) = queue.pop() {
        if let Some(node_ops) = ops.get(&n) {
            for &op in node_ops {
                plan.push(Step::new(op, n));
            }
        }
        let needed: Vec<EntityId> = forest.children(n).filter(|c| cover.contains(c)).collect();
        for &c in &needed {
            plan.push(Step::lock_exclusive(c));
        }
        plan.push(Step::unlock_exclusive(n));
        // Depth-first descent order (reverse so the smallest id pops first).
        for &c in needed.iter().rev() {
            queue.push(c);
        }
    }
    Ok(plan)
}

/// Why a step sequence is not tree-locked with respect to a forest.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TreeLockViolation {
    /// A non-first lock was taken while the node's parent was not held.
    ParentNotHeld {
        /// Index of the offending lock step.
        pos: usize,
        /// The locked entity.
        entity: EntityId,
    },
    /// An entity was locked more than once.
    RelockedEntity {
        /// Index of the second lock step.
        pos: usize,
        /// The relocked entity.
        entity: EntityId,
    },
    /// A lock on a node that is not in the forest.
    NotInForest {
        /// Index of the offending lock step.
        pos: usize,
        /// The missing entity.
        entity: EntityId,
    },
}

impl fmt::Display for TreeLockViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeLockViolation::ParentNotHeld { pos, entity } => {
                write!(
                    f,
                    "lock of {entity} at step {pos} without holding its parent"
                )
            }
            TreeLockViolation::RelockedEntity { pos, entity } => {
                write!(f, "entity {entity} relocked at step {pos}")
            }
            TreeLockViolation::NotInForest { pos, entity } => {
                write!(f, "lock of {entity} at step {pos}: not in the forest")
            }
        }
    }
}

impl std::error::Error for TreeLockViolation {}

/// Checks that `steps` is tree-locked with respect to `forest`.
///
/// This is the predicate rule DT3 quantifies over: a node may be garbage
/// collected from the database forest only if every active transaction
/// remains tree-locked with respect to some tree of the reduced forest.
pub fn is_tree_locked(steps: &[Step], forest: &Forest) -> Result<(), TreeLockViolation> {
    let mut held: BTreeSet<EntityId> = BTreeSet::new();
    let mut ever: BTreeSet<EntityId> = BTreeSet::new();
    let mut first_lock_seen = false;
    for (pos, s) in steps.iter().enumerate() {
        match s.op {
            Operation::Lock(_) => {
                if ever.contains(&s.entity) {
                    return Err(TreeLockViolation::RelockedEntity {
                        pos,
                        entity: s.entity,
                    });
                }
                if !forest.contains(s.entity) {
                    return Err(TreeLockViolation::NotInForest {
                        pos,
                        entity: s.entity,
                    });
                }
                if first_lock_seen {
                    let parent_held = forest.parent(s.entity).is_some_and(|p| held.contains(&p));
                    if !parent_held {
                        return Err(TreeLockViolation::ParentNotHeld {
                            pos,
                            entity: s.entity,
                        });
                    }
                }
                first_lock_seen = true;
                held.insert(s.entity);
                ever.insert(s.entity);
            }
            Operation::Unlock(_) => {
                held.remove(&s.entity);
            }
            Operation::Data(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::{LockedTransaction, TxId};

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    /// 1 -> {2, 3}; 3 -> {5, 6}.
    fn forest() -> Forest {
        let mut f = Forest::new();
        f.add_root(e(1)).unwrap();
        f.add_child(e(1), e(2)).unwrap();
        f.add_child(e(1), e(3)).unwrap();
        f.add_child(e(3), e(5)).unwrap();
        f.add_child(e(3), e(6)).unwrap();
        f
    }

    fn access() -> Vec<DataOp> {
        vec![DataOp::Read, DataOp::Write]
    }

    #[test]
    fn single_target_plan_is_minimal() {
        let f = forest();
        let ops = BTreeMap::from([(e(5), access())]);
        let plan = tree_lock_plan(&f, &ops).unwrap();
        assert_eq!(
            plan,
            vec![
                Step::lock_exclusive(e(5)),
                Step::read(e(5)),
                Step::write(e(5)),
                Step::unlock_exclusive(e(5)),
            ]
        );
        assert!(is_tree_locked(&plan, &f).is_ok());
    }

    #[test]
    fn multi_target_plan_starts_at_lca_and_is_tree_locked() {
        let f = forest();
        let ops = BTreeMap::from([(e(5), access()), (e(6), access()), (e(2), access())]);
        let plan = tree_lock_plan(&f, &ops).unwrap();
        // LCA of {2, 5, 6} is 1.
        assert_eq!(plan[0], Step::lock_exclusive(e(1)));
        assert!(is_tree_locked(&plan, &f).is_ok());
        // The plan is a valid well-formed locked transaction.
        let t = LockedTransaction::new(TxId(1), plan.clone());
        assert!(t.validate().is_ok());
        // Every target's data ops appear.
        for target in [e(2), e(5), e(6)] {
            assert!(plan.contains(&Step::read(target)));
            assert!(plan.contains(&Step::write(target)));
        }
        // Exactly the covering subtree {1, 2, 3, 5, 6} is locked.
        let locked: BTreeSet<EntityId> = plan
            .iter()
            .filter(|s| s.is_lock())
            .map(|s| s.entity)
            .collect();
        assert_eq!(locked, BTreeSet::from([e(1), e(2), e(3), e(5), e(6)]));
    }

    #[test]
    fn parent_released_only_after_children_locked() {
        let f = forest();
        let ops = BTreeMap::from([(e(5), access()), (e(6), access())]);
        let plan = tree_lock_plan(&f, &ops).unwrap();
        // LCA is 3; 3's unlock must come after locks of 5 and 6.
        let pos = |step: &Step| plan.iter().position(|s| s == step).expect("step in plan");
        assert!(pos(&Step::unlock_exclusive(e(3))) > pos(&Step::lock_exclusive(e(5))));
        assert!(pos(&Step::unlock_exclusive(e(3))) > pos(&Step::lock_exclusive(e(6))));
        assert!(is_tree_locked(&plan, &f).is_ok());
    }

    #[test]
    fn plan_errors() {
        let f = forest();
        assert_eq!(
            tree_lock_plan(&f, &BTreeMap::new()),
            Err(PlanError::NoTargets)
        );
        let ops = BTreeMap::from([(e(9), access())]);
        assert_eq!(
            tree_lock_plan(&f, &ops),
            Err(PlanError::TargetNotInForest(e(9)))
        );
        let mut f2 = f.clone();
        f2.add_root(e(9)).unwrap();
        let ops = BTreeMap::from([(e(2), access()), (e(9), access())]);
        assert_eq!(
            tree_lock_plan(&f2, &ops),
            Err(PlanError::TargetsSpanTrees(e(2), e(9)))
        );
    }

    #[test]
    fn validator_rejects_lock_without_parent() {
        let f = forest();
        let steps = vec![
            Step::lock_exclusive(e(1)),
            Step::unlock_exclusive(e(1)),
            Step::lock_exclusive(e(5)), // parent 3 never held
        ];
        assert_eq!(
            is_tree_locked(&steps, &f),
            Err(TreeLockViolation::ParentNotHeld {
                pos: 2,
                entity: e(5)
            })
        );
    }

    #[test]
    fn validator_rejects_relock() {
        let f = forest();
        let steps = vec![
            Step::lock_exclusive(e(1)),
            Step::unlock_exclusive(e(1)),
            Step::lock_exclusive(e(1)),
        ];
        assert_eq!(
            is_tree_locked(&steps, &f),
            Err(TreeLockViolation::RelockedEntity {
                pos: 2,
                entity: e(1)
            })
        );
    }

    #[test]
    fn validator_rejects_foreign_nodes() {
        let f = forest();
        let steps = vec![Step::lock_exclusive(e(42))];
        assert_eq!(
            is_tree_locked(&steps, &f),
            Err(TreeLockViolation::NotInForest {
                pos: 0,
                entity: e(42)
            })
        );
    }

    #[test]
    fn first_lock_may_be_anywhere() {
        let f = forest();
        let steps = vec![Step::lock_exclusive(e(6)), Step::unlock_exclusive(e(6))];
        assert!(is_tree_locked(&steps, &f).is_ok());
    }

    #[test]
    fn deep_chain_plan() {
        // Chain 1 -> 2 -> 3 -> 4 with target 4 only: plan locks just 4.
        let mut f = Forest::new();
        f.add_root(e(1)).unwrap();
        f.add_child(e(1), e(2)).unwrap();
        f.add_child(e(2), e(3)).unwrap();
        f.add_child(e(3), e(4)).unwrap();
        let ops = BTreeMap::from([(e(4), vec![DataOp::Write])]);
        let plan = tree_lock_plan(&f, &ops).unwrap();
        assert_eq!(plan.len(), 3); // LX 4, W 4, UX 4
                                   // Two targets at the ends need the whole chain.
        let ops = BTreeMap::from([(e(1), vec![DataOp::Read]), (e(4), vec![DataOp::Write])]);
        let plan = tree_lock_plan(&f, &ops).unwrap();
        assert!(is_tree_locked(&plan, &f).is_ok());
        let locked: Vec<EntityId> = plan
            .iter()
            .filter(|s| s.is_lock())
            .map(|s| s.entity)
            .collect();
        assert_eq!(locked, vec![e(1), e(2), e(3), e(4)]);
    }
}
