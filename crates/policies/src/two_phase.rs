//! Two-phase locking (2PL) — the baseline safe policy.
//!
//! Theorem 1's condition 1 requires the culprit transaction to lock an
//! entity *after* unlocking another; if every transaction is two-phase, no
//! canonical nonserializable schedule exists and the system is safe. This
//! module provides generators that lock an arbitrary (unlocked) transaction
//! two-phase, plus the validator.

use slp_core::{DataOp, LockMode, LockedTransaction, Operation, Step, Transaction};
use std::collections::BTreeMap;

/// The lock mode a transaction needs on an entity given all its operations
/// on that entity: shared iff it only ever reads it.
fn needed_mode(t: &Transaction, entity: slp_core::EntityId) -> LockMode {
    let only_reads = t
        .steps
        .iter()
        .filter(|s| s.entity == entity)
        .all(|s| s.op == Operation::Data(DataOp::Read));
    if only_reads {
        LockMode::Shared
    } else {
        LockMode::Exclusive
    }
}

/// Locks `t` with **strict 2PL**: each entity is locked (in the weakest
/// sufficient mode) immediately before the transaction's first operation on
/// it, and every lock is released after the last data step.
pub fn lock_strict(t: &Transaction) -> LockedTransaction {
    let mut steps = Vec::with_capacity(t.steps.len() * 2);
    let mut locked: BTreeMap<slp_core::EntityId, LockMode> = BTreeMap::new();
    for s in &t.steps {
        locked.entry(s.entity).or_insert_with(|| {
            let mode = needed_mode(t, s.entity);
            steps.push(Step::lock(mode, s.entity));
            mode
        });
        steps.push(*s);
    }
    for (&e, &mode) in &locked {
        steps.push(Step::unlock(mode, e));
    }
    LockedTransaction::new(t.id, steps)
}

/// Locks `t` with **conservative 2PL**: all locks are acquired up front (in
/// entity-id order, which also makes the policy deadlock-free), all
/// released at the end.
pub fn lock_conservative(t: &Transaction) -> LockedTransaction {
    let mut modes: BTreeMap<slp_core::EntityId, LockMode> = BTreeMap::new();
    for s in &t.steps {
        modes
            .entry(s.entity)
            .or_insert_with(|| needed_mode(t, s.entity));
    }
    let mut steps = Vec::with_capacity(t.steps.len() + 2 * modes.len());
    for (&e, &mode) in &modes {
        steps.push(Step::lock(mode, e));
    }
    steps.extend(t.steps.iter().copied());
    for (&e, &mode) in &modes {
        steps.push(Step::unlock(mode, e));
    }
    LockedTransaction::new(t.id, steps)
}

/// Whether a locked transaction complies with 2PL: well formed, locks each
/// entity at most once, and acquires no lock after its first unlock.
pub fn complies(t: &LockedTransaction) -> bool {
    t.validate().is_ok() && t.is_two_phase()
}

// ---------------------------------------------------------------------
// The unified policy API
// ---------------------------------------------------------------------

use crate::altruistic::AltruisticEngine;
use crate::api::{
    AccessIntent, GrantScope, PolicyAction, PolicyEngine, PolicyResponse, PolicyViolation,
};
use slp_core::TxId;

/// Strict 2PL as an online [`PolicyEngine`].
///
/// Internally this is an [`AltruisticEngine`]: strict 2PL is altruistic
/// locking whose plans never donate, so AL2 never fires and the engine
/// serves as a plain exclusive/shared lock manager with at-most-once
/// bookkeeping. The newtype exists so the registry and reports can tell
/// the two policies apart — the *planner* is what makes 2PL two-phase.
#[derive(Clone, Debug, Default)]
pub struct TwoPhaseEngine {
    inner: AltruisticEngine,
}

impl TwoPhaseEngine {
    /// A fresh lock manager.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PolicyEngine for TwoPhaseEngine {
    fn name(&self) -> &'static str {
        "2PL"
    }

    fn begin(
        &mut self,
        tx: TxId,
        intent: &AccessIntent,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        PolicyEngine::begin(&mut self.inner, tx, intent)
    }

    fn request(&mut self, tx: TxId, action: PolicyAction) -> PolicyResponse {
        match self.inner.request(tx, action) {
            PolicyResponse::Violation(PolicyViolation::Unsupported { action, .. }) => {
                PolicyResponse::Violation(PolicyViolation::Unsupported {
                    policy: "2PL",
                    action,
                })
            }
            response => response,
        }
    }

    fn finish(&mut self, tx: TxId) -> Result<Vec<slp_core::Step>, PolicyViolation> {
        PolicyEngine::finish(&mut self.inner, tx)
    }

    fn abort(&mut self, tx: TxId) -> Vec<slp_core::Step> {
        PolicyEngine::abort(&mut self.inner, tx)
    }

    /// 2PL grants from nothing but the entity's holder set: the inner
    /// engine is a plain lock manager, the two-phase planner never
    /// donates, so AL2 wake checks are vacuous and a per-entity lock word
    /// can take the decision. Plans outside the plain lock/access shape
    /// (donations, locked points, structural ops) still route through the
    /// engine — see [`GrantScope`].
    fn grant_scope(&self) -> GrantScope {
        GrantScope::PerEntity
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::{EntityId, TxId};

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn sample() -> Transaction {
        Transaction::new(
            TxId(1),
            vec![
                Step::read(e(0)),
                Step::write(e(1)),
                Step::read(e(0)),
                Step::read(e(2)),
            ],
        )
    }

    #[test]
    fn strict_locks_are_two_phase_and_well_formed() {
        let locked = lock_strict(&sample());
        assert!(complies(&locked));
    }

    #[test]
    fn conservative_locks_are_two_phase_and_well_formed() {
        let locked = lock_conservative(&sample());
        assert!(complies(&locked));
        // All three locks come first.
        assert!(locked.steps[..3].iter().all(Step::is_lock));
    }

    #[test]
    fn read_only_entities_get_shared_locks() {
        let locked = lock_strict(&sample());
        assert_eq!(
            locked.steps[0],
            Step::lock_shared(e(0)),
            "entity 0 is only read"
        );
        // Entity 1 is written: exclusive.
        assert!(locked.steps.contains(&Step::lock_exclusive(e(1))));
        assert!(!locked.steps.contains(&Step::lock_shared(e(1))));
    }

    #[test]
    fn projection_recovers_the_original_transaction() {
        let t = sample();
        for locked in [lock_strict(&t), lock_conservative(&t)] {
            assert_eq!(locked.unlocked().steps, t.steps);
        }
    }

    #[test]
    fn inserts_and_deletes_get_exclusive_locks() {
        let t = Transaction::new(TxId(2), vec![Step::insert(e(5)), Step::delete(e(6))]);
        let locked = lock_strict(&t);
        assert!(complies(&locked));
        assert!(locked.steps.contains(&Step::lock_exclusive(e(5))));
        assert!(locked.steps.contains(&Step::lock_exclusive(e(6))));
    }

    #[test]
    fn non_two_phase_fails_compliance() {
        let t = LockedTransaction::new(
            TxId(1),
            vec![
                Step::lock_exclusive(e(0)),
                Step::write(e(0)),
                Step::unlock_exclusive(e(0)),
                Step::lock_exclusive(e(1)),
                Step::write(e(1)),
                Step::unlock_exclusive(e(1)),
            ],
        );
        assert!(!complies(&t));
    }

    #[test]
    fn empty_transaction_locks_to_empty() {
        let t = Transaction::new(TxId(3), vec![]);
        assert!(lock_strict(&t).is_empty());
        assert!(lock_conservative(&t).is_empty());
    }
}
