//! Altruistic locking — Section 5 \[SGMS94\].
//!
//! Designed for long-lived transactions: a transaction may *donate*
//! (unlock) items it is finished with before reaching its **locked point**
//! (the instant it acquires its last lock). A transaction `Ti` is **in the
//! wake** of `Tj` if `Ti` has locked an item unlocked by `Tj` while `Tj`
//! has not yet reached its locked point. Rules (exclusive locks only):
//!
//! * **AL1** — a transaction must lock an item before any
//!   `INSERT`/`DELETE`/`ACCESS` on it;
//! * **AL2** — if `Ti` is in the wake of an active `Tj`, *all* items locked
//!   by `Ti` so far must have been unlocked by `Tj` in the past;
//! * **AL3** — a transaction may lock an item only once.
//!
//! [`AltruisticEngine`] enforces the rules online. The engine learns locked
//! points either from [`AltruisticEngine::declare_locked_point`] (the
//! SGMS94 assumption that access sets are predeclared) or implicitly at
//! [`AltruisticEngine::finish`]. The mutant switch
//! [`AltruisticConfig::without_wake_rule`] disables AL2 for the E7
//! ablation.

use slp_core::{DataOp, EntityId, LockMode, LockTable, Step, TxId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A violation of the altruistic locking rules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AltruisticViolation {
    /// The transaction was never begun (or already finished).
    UnknownTransaction(TxId),
    /// `begin` called twice.
    AlreadyBegun(TxId),
    /// AL3: the transaction already locked this item.
    Relock(TxId, EntityId),
    /// AL2: the transaction is in the wake of `wake_of` but holds (or would
    /// hold) an item outside that transaction's donated set.
    OutsideWake {
        /// The transaction violating the rule.
        tx: TxId,
        /// The transaction whose wake is being violated.
        wake_of: TxId,
        /// The item outside the wake.
        item: EntityId,
    },
    /// Another transaction holds the lock (wait, don't abort).
    LockConflict(EntityId, TxId),
    /// AL1: a data operation on an item the transaction does not hold.
    NotHolding(TxId, EntityId),
    /// Locking after the declared locked point.
    PastLockedPoint(TxId),
}

impl fmt::Display for AltruisticViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use AltruisticViolation::*;
        match self {
            UnknownTransaction(t) => write!(f, "{t} is not an active transaction"),
            AlreadyBegun(t) => write!(f, "{t} already began"),
            Relock(t, e) => write!(f, "AL3: {t} already locked {e}"),
            OutsideWake { tx, wake_of, item } => write!(
                f,
                "AL2: {tx} is in the wake of {wake_of} but item {item} was not donated by {wake_of}"
            ),
            LockConflict(e, holder) => write!(f, "{e} is locked by {holder}"),
            NotHolding(t, e) => write!(f, "AL1: {t} does not hold a lock on {e}"),
            PastLockedPoint(t) => write!(f, "{t} tried to lock after its locked point"),
        }
    }
}

impl std::error::Error for AltruisticViolation {}

/// Rule switches for ablation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AltruisticConfig {
    /// Enforce AL2 (the wake rule).
    pub enforce_wake_rule: bool,
}

impl Default for AltruisticConfig {
    fn default() -> Self {
        AltruisticConfig {
            enforce_wake_rule: true,
        }
    }
}

impl AltruisticConfig {
    /// The sound policy.
    pub fn strict() -> Self {
        Self::default()
    }

    /// Mutant: AL2 disabled — unsafe, used to show the rule is load-bearing.
    pub fn without_wake_rule() -> Self {
        AltruisticConfig {
            enforce_wake_rule: false,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct AltTx {
    locked_past: BTreeSet<EntityId>,
    holding: BTreeSet<EntityId>,
    donated: BTreeSet<EntityId>,
    at_locked_point: bool,
}

/// The altruistic locking engine (exclusive locks only).
#[derive(Clone, Debug, Default)]
pub struct AltruisticEngine {
    table: LockTable,
    txs: BTreeMap<TxId, AltTx>,
    config: AltruisticConfig,
}

impl AltruisticEngine {
    /// An engine with the full rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with explicit rule switches.
    pub fn with_config(config: AltruisticConfig) -> Self {
        AltruisticEngine {
            config,
            ..Self::default()
        }
    }

    /// Registers a transaction.
    pub fn begin(&mut self, tx: TxId) -> Result<(), AltruisticViolation> {
        if self.txs.contains_key(&tx) {
            return Err(AltruisticViolation::AlreadyBegun(tx));
        }
        self.txs.insert(tx, AltTx::default());
        Ok(())
    }

    fn state(&self, tx: TxId) -> Result<&AltTx, AltruisticViolation> {
        self.txs
            .get(&tx)
            .ok_or(AltruisticViolation::UnknownTransaction(tx))
    }

    /// Whether `tx` is currently in the wake of `other`.
    pub fn in_wake_of(&self, tx: TxId, other: TxId) -> bool {
        let (Some(ti), Some(tj)) = (self.txs.get(&tx), self.txs.get(&other)) else {
            return false;
        };
        !tj.at_locked_point && ti.locked_past.intersection(&tj.donated).next().is_some()
    }

    /// Checks whether `tx` may lock `item` right now; distinguishes policy
    /// violations (abort) from lock conflicts (wait).
    pub fn check_lock(&self, tx: TxId, item: EntityId) -> Result<(), AltruisticViolation> {
        let st = self.state(tx)?;
        if st.at_locked_point {
            return Err(AltruisticViolation::PastLockedPoint(tx));
        }
        if st.locked_past.contains(&item) {
            return Err(AltruisticViolation::Relock(tx, item));
        }
        if self.config.enforce_wake_rule {
            // Hypothetically extend the locked set with `item`, then check
            // AL2 against every active transaction before its locked point.
            for (&other, tj) in &self.txs {
                if other == tx || tj.at_locked_point {
                    continue;
                }
                let entering_wake = tj.donated.contains(&item)
                    || st.locked_past.intersection(&tj.donated).next().is_some();
                if !entering_wake {
                    continue;
                }
                // All items locked so far (including `item`) must be donated.
                if let Some(&outside) = st
                    .locked_past
                    .iter()
                    .chain(std::iter::once(&item))
                    .find(|i| !tj.donated.contains(i))
                {
                    return Err(AltruisticViolation::OutsideWake {
                        tx,
                        wake_of: other,
                        item: outside,
                    });
                }
            }
        }
        if let Some(holder) = self.table.conflicting_holder(tx, item, LockMode::Exclusive) {
            return Err(AltruisticViolation::LockConflict(item, holder));
        }
        Ok(())
    }

    /// Locks `item` for `tx`. Emits `(LX item)`.
    pub fn lock(&mut self, tx: TxId, item: EntityId) -> Result<Step, AltruisticViolation> {
        self.check_lock(tx, item)?;
        let st = self.txs.get_mut(&tx).expect("checked");
        st.locked_past.insert(item);
        st.holding.insert(item);
        self.table.grant(tx, item, LockMode::Exclusive);
        Ok(Step::lock_exclusive(item))
    }

    /// Unlocks (donates) `item`. Emits `(UX item)`. Before the locked
    /// point this is a *donation*: other transactions locking it enter the
    /// wake of `tx`.
    pub fn unlock(&mut self, tx: TxId, item: EntityId) -> Result<Step, AltruisticViolation> {
        let st = self
            .txs
            .get_mut(&tx)
            .ok_or(AltruisticViolation::UnknownTransaction(tx))?;
        if !st.holding.remove(&item) {
            return Err(AltruisticViolation::NotHolding(tx, item));
        }
        st.donated.insert(item);
        self.table.release(tx, item, LockMode::Exclusive);
        Ok(Step::unlock_exclusive(item))
    }

    /// Performs a data operation on a held item (AL1). Emits the step(s):
    /// `ACCESS` expands to `(R item)(W item)`.
    pub fn data(
        &mut self,
        tx: TxId,
        op: DataOp,
        item: EntityId,
    ) -> Result<Vec<Step>, AltruisticViolation> {
        let st = self.state(tx)?;
        if !st.holding.contains(&item) {
            return Err(AltruisticViolation::NotHolding(tx, item));
        }
        Ok(vec![Step::new(op, item)])
    }

    /// `ACCESS`: read immediately followed by write.
    pub fn access(&mut self, tx: TxId, item: EntityId) -> Result<Vec<Step>, AltruisticViolation> {
        let st = self.state(tx)?;
        if !st.holding.contains(&item) {
            return Err(AltruisticViolation::NotHolding(tx, item));
        }
        Ok(vec![Step::read(item), Step::write(item)])
    }

    /// Declares that `tx` has acquired its last lock. From this instant
    /// transactions holding its donated items are no longer "in its wake".
    pub fn declare_locked_point(&mut self, tx: TxId) -> Result<(), AltruisticViolation> {
        let st = self
            .txs
            .get_mut(&tx)
            .ok_or(AltruisticViolation::UnknownTransaction(tx))?;
        st.at_locked_point = true;
        Ok(())
    }

    /// Finishes `tx`: releases remaining locks, retires it. Emits unlocks.
    pub fn finish(&mut self, tx: TxId) -> Result<Vec<Step>, AltruisticViolation> {
        let st = self
            .txs
            .remove(&tx)
            .ok_or(AltruisticViolation::UnknownTransaction(tx))?;
        let mut steps = Vec::new();
        for item in st.holding {
            self.table.release(tx, item, LockMode::Exclusive);
            steps.push(Step::unlock_exclusive(item));
        }
        Ok(steps)
    }

    /// Aborts `tx` (releases everything, no undo — as in the paper's
    /// model). Emits unlocks.
    pub fn abort(&mut self, tx: TxId) -> Vec<Step> {
        self.finish(tx).unwrap_or_default()
    }

    /// Items currently held by `tx`.
    pub fn holding(&self, tx: TxId) -> Vec<EntityId> {
        self.txs
            .get(&tx)
            .map_or_else(Vec::new, |s| s.holding.iter().copied().collect())
    }

    /// The rule switches this engine enforces.
    pub fn config(&self) -> AltruisticConfig {
        self.config
    }
}

// ---------------------------------------------------------------------
// The unified policy API
// ---------------------------------------------------------------------

use crate::api::{AccessIntent, PolicyAction, PolicyEngine, PolicyResponse, PolicyViolation};

/// Folds an engine result into a [`PolicyResponse`], routing lock
/// conflicts to the wait channel and rule violations to the abort channel.
fn respond(result: Result<Vec<Step>, AltruisticViolation>) -> PolicyResponse {
    match result {
        Ok(steps) => PolicyResponse::Granted(steps),
        Err(AltruisticViolation::LockConflict(entity, holder)) => {
            PolicyResponse::Conflict { entity, holder }
        }
        Err(v) => PolicyResponse::Violation(PolicyViolation::Altruistic(v)),
    }
}

impl PolicyEngine for AltruisticEngine {
    fn name(&self) -> &'static str {
        if self.config.enforce_wake_rule {
            "altruistic"
        } else {
            "altruistic-no-wake"
        }
    }

    fn begin(
        &mut self,
        tx: TxId,
        _intent: &AccessIntent,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        AltruisticEngine::begin(self, tx).map_err(PolicyViolation::Altruistic)?;
        Ok(None)
    }

    fn request(&mut self, tx: TxId, action: PolicyAction) -> PolicyResponse {
        let result = match action {
            PolicyAction::Lock(e) => self
                .check_lock(tx, e)
                .map(|()| vec![self.lock(tx, e).expect("checked")]),
            PolicyAction::Unlock(e) => self.unlock(tx, e).map(|s| vec![s]),
            PolicyAction::Access(e) => self.access(tx, e),
            PolicyAction::Read(e) => self.data(tx, DataOp::Read, e),
            PolicyAction::Write(e) => self.data(tx, DataOp::Write, e),
            PolicyAction::LockedPoint => self.declare_locked_point(tx).map(|()| Vec::new()),
            structural => {
                return PolicyResponse::Violation(PolicyViolation::Unsupported {
                    policy: PolicyEngine::name(self),
                    action: structural,
                })
            }
        };
        respond(result)
    }

    fn finish(&mut self, tx: TxId) -> Result<Vec<Step>, PolicyViolation> {
        AltruisticEngine::finish(self, tx).map_err(PolicyViolation::Altruistic)
    }

    fn abort(&mut self, tx: TxId) -> Vec<Step> {
        AltruisticEngine::abort(self, tx)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    /// The Fig. 4 walkthrough: T1 is long-lived over items 1, 2, 3; it
    /// releases 1 early. T2 locks 1 (entering T1's wake); while T1 is
    /// before its locked point T2 may lock only items T1 donated; after
    /// T1's locked point T2 is free.
    #[test]
    fn fig4_wake_walkthrough() {
        let mut eng = AltruisticEngine::new();
        eng.begin(t(1)).unwrap();
        eng.begin(t(2)).unwrap();
        eng.lock(t(1), e(1)).unwrap();
        eng.access(t(1), e(1)).unwrap();
        eng.lock(t(1), e(2)).unwrap();
        eng.unlock(t(1), e(1)).unwrap(); // donate item 1
                                         // T2 locks 1 -> enters T1's wake.
        eng.lock(t(2), e(1)).unwrap();
        assert!(eng.in_wake_of(t(2), t(1)));
        // T2 may not lock item 4 (not donated by T1) while in the wake.
        assert_eq!(
            eng.check_lock(t(2), e(4)),
            Err(AltruisticViolation::OutsideWake {
                tx: t(2),
                wake_of: t(1),
                item: e(4)
            })
        );
        // T1 donates 2 as well; T2 can take it.
        eng.unlock(t(1), e(2)).unwrap();
        eng.lock(t(2), e(2)).unwrap();
        // T1 reaches its locked point (locks its last item 3).
        eng.lock(t(1), e(3)).unwrap();
        eng.declare_locked_point(t(1)).unwrap();
        assert!(!eng.in_wake_of(t(2), t(1)));
        // Now T2 can lock anything.
        assert!(eng.lock(t(2), e(4)).is_ok());
    }

    #[test]
    fn wake_rule_checked_on_entry_too() {
        let mut eng = AltruisticEngine::new();
        eng.begin(t(1)).unwrap();
        eng.begin(t(2)).unwrap();
        eng.lock(t(1), e(1)).unwrap();
        eng.unlock(t(1), e(1)).unwrap();
        // T2 first locks a non-donated item, then tries the donated one:
        // entering the wake now would leave item 5 outside it.
        eng.lock(t(2), e(5)).unwrap();
        assert_eq!(
            eng.check_lock(t(2), e(1)),
            Err(AltruisticViolation::OutsideWake {
                tx: t(2),
                wake_of: t(1),
                item: e(5)
            })
        );
    }

    #[test]
    fn finished_transactions_produce_no_wake() {
        let mut eng = AltruisticEngine::new();
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), e(1)).unwrap();
        eng.unlock(t(1), e(1)).unwrap();
        eng.finish(t(1)).unwrap();
        eng.begin(t(2)).unwrap();
        eng.lock(t(2), e(1)).unwrap();
        assert!(!eng.in_wake_of(t(2), t(1)));
        assert!(eng.lock(t(2), e(9)).is_ok());
    }

    #[test]
    fn al3_relock_rejected() {
        let mut eng = AltruisticEngine::new();
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), e(1)).unwrap();
        eng.unlock(t(1), e(1)).unwrap();
        assert_eq!(
            eng.check_lock(t(1), e(1)),
            Err(AltruisticViolation::Relock(t(1), e(1)))
        );
    }

    #[test]
    fn al1_data_requires_lock() {
        let mut eng = AltruisticEngine::new();
        eng.begin(t(1)).unwrap();
        assert_eq!(
            eng.data(t(1), DataOp::Write, e(1)),
            Err(AltruisticViolation::NotHolding(t(1), e(1)))
        );
        eng.lock(t(1), e(1)).unwrap();
        assert_eq!(
            eng.data(t(1), DataOp::Write, e(1)),
            Ok(vec![Step::write(e(1))])
        );
    }

    #[test]
    fn lock_conflicts_reported_for_waiting() {
        let mut eng = AltruisticEngine::new();
        eng.begin(t(1)).unwrap();
        eng.begin(t(2)).unwrap();
        eng.lock(t(1), e(1)).unwrap();
        assert_eq!(
            eng.check_lock(t(2), e(1)),
            Err(AltruisticViolation::LockConflict(e(1), t(1)))
        );
    }

    #[test]
    fn locking_after_locked_point_rejected() {
        let mut eng = AltruisticEngine::new();
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), e(1)).unwrap();
        eng.declare_locked_point(t(1)).unwrap();
        assert_eq!(
            eng.check_lock(t(1), e(2)),
            Err(AltruisticViolation::PastLockedPoint(t(1)))
        );
    }

    #[test]
    fn mutant_allows_wake_escape() {
        let mut eng = AltruisticEngine::with_config(AltruisticConfig::without_wake_rule());
        eng.begin(t(1)).unwrap();
        eng.begin(t(2)).unwrap();
        eng.lock(t(1), e(1)).unwrap();
        eng.unlock(t(1), e(1)).unwrap();
        eng.lock(t(2), e(1)).unwrap();
        // AL2 disabled: T2 may lock outside the wake — the unsafe behavior
        // experiment E7 exploits.
        assert!(eng.lock(t(2), e(4)).is_ok());
    }

    #[test]
    fn two_wakes_simultaneously() {
        let mut eng = AltruisticEngine::new();
        eng.begin(t(1)).unwrap();
        eng.begin(t(2)).unwrap();
        eng.begin(t(3)).unwrap();
        // T1 donates {1, 2}; T2 donates {2, 3}.
        eng.lock(t(1), e(1)).unwrap();
        eng.lock(t(1), e(2)).unwrap();
        eng.unlock(t(1), e(1)).unwrap();
        eng.unlock(t(1), e(2)).unwrap();
        eng.lock(t(2), e(3)).unwrap();
        eng.unlock(t(2), e(3)).unwrap();
        // T3 locks 2 (in T1's wake only). Fine: {2} ⊆ donated(T1).
        eng.lock(t(3), e(2)).unwrap();
        // T3 locks 3 -> it is already in T1's wake ({3} not donated by T1)
        // and would also enter T2's wake ({2} not donated by T2). Either
        // violation is a correct rejection; the engine reports the first.
        assert!(matches!(
            eng.check_lock(t(3), e(3)),
            Err(AltruisticViolation::OutsideWake { tx, .. }) if tx == t(3)
        ));
    }

    #[test]
    fn finish_releases_remaining_locks() {
        let mut eng = AltruisticEngine::new();
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), e(1)).unwrap();
        eng.lock(t(1), e(2)).unwrap();
        eng.unlock(t(1), e(1)).unwrap();
        let steps = eng.finish(t(1)).unwrap();
        assert_eq!(steps, vec![Step::unlock_exclusive(e(2))]);
        assert_eq!(eng.holding(t(1)), Vec::<EntityId>::new());
    }
}
