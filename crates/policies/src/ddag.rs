//! The dynamic directed acyclic graph (DDAG) policy — Section 4.
//!
//! The database is a rooted DAG whose nodes *and edges* are entities;
//! transactions perform `ACCESS` (a `READ` immediately followed by a
//! `WRITE`), `INSERT`, and `DELETE` operations, with **exclusive locks
//! only**, under these rules:
//!
//! * **L1** — before any `INSERT`/`DELETE`/`ACCESS` on a node `A` (an edge
//!   `(A, B)`), `T` locks `A` (both `A` and `B`);
//! * **L2** — a node being inserted can be locked at any time;
//! * **L3** — a node can be locked by a transaction at most once;
//! * **L4** — a transaction may begin by locking any node;
//! * **L5** — other than the first node locked by `T`, a node in `G` can be
//!   locked by `T` only if all its predecessors *in the present state of
//!   `G`* have been locked by `T` in the past, and `T` is presently holding
//!   a lock on at least one of them.
//!
//! Additionally, a deleted entity may never be reinserted.
//!
//! [`DdagEngine`] is an online rule enforcer: it maintains the shared
//! graph, a lock table, and per-transaction lock history, and rejects any
//! action violating the rules. The mutant switches
//! ([`DdagConfig::without_held_predecessor_rule`], …) disable individual
//! clauses of L5 so the benchmark harness can demonstrate that each clause
//! is load-bearing (experiment E7).
//!
//! ## Modeling note: edge entities
//!
//! The paper locks only *nodes*; edge operations are protected by the locks
//! on both endpoints. To keep emitted schedules well formed in the core
//! model (every `INSERT` under an exclusive lock on the inserted entity),
//! the engine also takes a lock on the edge entity itself, held until the
//! transaction finishes. This adds no new conflicts beyond the endpoint
//! locks: two transactions can touch the same edge only strictly ordered by
//! their exclusive endpoint locks.

use slp_core::{EntityId, LockMode, LockTable, Step, TxId, Universe};
use slp_graph::{dag, DiGraph};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A violation of the DDAG rules (or of basic lock/graph discipline).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DdagViolation {
    /// The transaction was never begun (or already finished).
    UnknownTransaction(TxId),
    /// `begin` called twice.
    AlreadyBegun(TxId),
    /// L3: the transaction already locked this entity.
    Relock(TxId, EntityId),
    /// L5 (first clause): some predecessor in the present graph was never
    /// locked by the transaction.
    PredecessorsNotLocked(TxId, EntityId),
    /// L5 (second clause): the transaction holds no lock on any present
    /// predecessor.
    NoHeldPredecessor(TxId, EntityId),
    /// The entity was deleted earlier and may not be reinserted.
    ReinsertionForbidden(EntityId),
    /// Another transaction holds the lock (the caller should wait or abort;
    /// the engine never blocks).
    LockConflict(EntityId, TxId),
    /// L1/well-formedness: an operation on an entity the transaction does
    /// not hold.
    NotHolding(TxId, EntityId),
    /// The node does not exist in the graph.
    NoSuchNode(EntityId),
    /// The node already exists in the graph.
    NodeExists(EntityId),
    /// The edge does not exist.
    NoSuchEdge(EntityId, EntityId),
    /// The edge already exists.
    EdgeExists(EntityId, EntityId),
    /// Inserting this edge would create a cycle (transactions must maintain
    /// acyclicity).
    WouldCreateCycle(EntityId, EntityId),
    /// Deleting a node that still has incident edges.
    NodeHasEdges(EntityId),
}

impl fmt::Display for DdagViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use DdagViolation::*;
        match self {
            UnknownTransaction(t) => write!(f, "{t} is not an active transaction"),
            AlreadyBegun(t) => write!(f, "{t} already began"),
            Relock(t, e) => write!(f, "L3: {t} already locked {e}"),
            PredecessorsNotLocked(t, e) => {
                write!(f, "L5: {t} has not locked all present predecessors of {e}")
            }
            NoHeldPredecessor(t, e) => {
                write!(f, "L5: {t} holds no lock on any present predecessor of {e}")
            }
            ReinsertionForbidden(e) => write!(f, "{e} was deleted and cannot be reinserted"),
            LockConflict(e, holder) => write!(f, "{e} is locked by {holder}"),
            NotHolding(t, e) => write!(f, "L1: {t} does not hold a lock on {e}"),
            NoSuchNode(e) => write!(f, "node {e} does not exist"),
            NodeExists(e) => write!(f, "node {e} already exists"),
            NoSuchEdge(a, b) => write!(f, "edge ({a}, {b}) does not exist"),
            EdgeExists(a, b) => write!(f, "edge ({a}, {b}) already exists"),
            WouldCreateCycle(a, b) => write!(f, "edge ({a}, {b}) would create a cycle"),
            NodeHasEdges(e) => write!(f, "node {e} still has incident edges"),
        }
    }
}

impl std::error::Error for DdagViolation {}

/// Rule switches for ablation (experiment E7). The default enables all
/// rules — the policy the paper proves safe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DdagConfig {
    /// Enforce L5's "all present predecessors locked in the past".
    pub require_all_predecessors: bool,
    /// Enforce L5's "presently holding a lock on at least one predecessor".
    pub require_held_predecessor: bool,
}

impl Default for DdagConfig {
    fn default() -> Self {
        DdagConfig {
            require_all_predecessors: true,
            require_held_predecessor: true,
        }
    }
}

impl DdagConfig {
    /// The sound policy.
    pub fn strict() -> Self {
        Self::default()
    }

    /// Mutant: drop the "presently holding" clause of L5.
    pub fn without_held_predecessor_rule() -> Self {
        DdagConfig {
            require_held_predecessor: false,
            ..Self::default()
        }
    }

    /// Mutant: drop the "all predecessors locked in the past" clause of L5.
    pub fn without_all_predecessors_rule() -> Self {
        DdagConfig {
            require_all_predecessors: false,
            ..Self::default()
        }
    }
}

#[derive(Clone, Debug, Default)]
struct DdagTx {
    first: Option<EntityId>,
    locked_past: BTreeSet<EntityId>,
    holding: BTreeSet<EntityId>,
    /// Edge entities locked by this transaction (released at finish).
    edge_locks: Vec<EntityId>,
}

/// The DDAG policy engine: shared graph + lock table + per-transaction rule
/// state. All locks are exclusive.
#[derive(Clone, Debug)]
pub struct DdagEngine {
    universe: Universe,
    graph: DiGraph,
    table: LockTable,
    txs: BTreeMap<TxId, DdagTx>,
    deleted: BTreeSet<EntityId>,
    config: DdagConfig,
    edge_entities: BTreeMap<(EntityId, EntityId), EntityId>,
    edge_seq: u64,
}

impl DdagEngine {
    /// Creates an engine over an initial graph. The caller is responsible
    /// for the initial graph being a rooted DAG (checkable via
    /// [`DdagEngine::is_rooted_dag`]). Edge entities are allocated for all
    /// initial edges so they can be deleted later.
    pub fn new(universe: Universe, graph: DiGraph) -> Self {
        let mut engine = DdagEngine {
            universe,
            graph,
            table: LockTable::new(),
            txs: BTreeMap::new(),
            deleted: BTreeSet::new(),
            config: DdagConfig::default(),
            edge_entities: BTreeMap::new(),
            edge_seq: 0,
        };
        let edges: Vec<(EntityId, EntityId)> = engine.graph.edges().collect();
        for (a, b) in edges {
            let e = engine.fresh_edge_entity(a, b);
            engine.edge_entities.insert((a, b), e);
        }
        engine
    }

    /// Interns a fresh entity name (e.g. for a node about to be inserted).
    pub fn intern(&mut self, name: &str) -> EntityId {
        self.universe.entity(name)
    }

    /// Creates an engine with explicit rule switches (for ablations).
    pub fn with_config(universe: Universe, graph: DiGraph, config: DdagConfig) -> Self {
        DdagEngine {
            config,
            ..Self::new(universe, graph)
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The universe (grows as edge entities are allocated).
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Whether the current graph is a rooted DAG.
    pub fn is_rooted_dag(&self) -> bool {
        dag::is_acyclic(&self.graph) && slp_graph::rooted::is_rooted(&self.graph)
    }

    /// The holder of a lock on `n`, if any.
    pub fn lock_holder(&self, n: EntityId) -> Option<TxId> {
        self.table.holders(n).first().map(|&(t, _)| t)
    }

    /// Entities currently held by `tx` (nodes only).
    pub fn holding(&self, tx: TxId) -> Vec<EntityId> {
        self.txs
            .get(&tx)
            .map_or_else(Vec::new, |s| s.holding.iter().copied().collect())
    }

    /// Registers a new transaction.
    pub fn begin(&mut self, tx: TxId) -> Result<(), DdagViolation> {
        if self.txs.contains_key(&tx) {
            return Err(DdagViolation::AlreadyBegun(tx));
        }
        self.txs.insert(tx, DdagTx::default());
        Ok(())
    }

    fn state(&self, tx: TxId) -> Result<&DdagTx, DdagViolation> {
        self.txs
            .get(&tx)
            .ok_or(DdagViolation::UnknownTransaction(tx))
    }

    /// Checks whether `tx` may lock node `n` *right now* without acquiring
    /// it. Distinguishes policy violations (abort) from lock conflicts
    /// (wait) so a scheduler can queue rather than abort.
    pub fn check_lock(&self, tx: TxId, n: EntityId) -> Result<(), DdagViolation> {
        let st = self.state(tx)?;
        if st.locked_past.contains(&n) {
            return Err(DdagViolation::Relock(tx, n));
        }
        if self.graph.has_node(n) {
            // L4: the first lock may be any node; afterwards L5 applies.
            if st.first.is_some() {
                let preds: BTreeSet<EntityId> = self.graph.predecessors(n).collect();
                if self.config.require_all_predecessors
                    && !preds.iter().all(|p| st.locked_past.contains(p))
                {
                    return Err(DdagViolation::PredecessorsNotLocked(tx, n));
                }
                if self.config.require_held_predecessor
                    && !preds.iter().any(|p| st.holding.contains(p))
                {
                    return Err(DdagViolation::NoHeldPredecessor(tx, n));
                }
            }
        } else {
            // L2: a node being inserted can be locked at any time — but a
            // deleted entity may not come back.
            if self.deleted.contains(&n) {
                return Err(DdagViolation::ReinsertionForbidden(n));
            }
        }
        if let Some(holder) = self.table.conflicting_holder(tx, n, LockMode::Exclusive) {
            return Err(DdagViolation::LockConflict(n, holder));
        }
        Ok(())
    }

    /// Locks node `n` for `tx` (exclusive). Emits the `(LX n)` step.
    pub fn lock(&mut self, tx: TxId, n: EntityId) -> Result<Step, DdagViolation> {
        self.check_lock(tx, n)?;
        let st = self.txs.get_mut(&tx).expect("checked by check_lock");
        st.first.get_or_insert(n);
        st.locked_past.insert(n);
        st.holding.insert(n);
        self.table.grant(tx, n, LockMode::Exclusive);
        Ok(Step::lock_exclusive(n))
    }

    /// Unlocks node `n`. Emits `(UX n)`.
    pub fn unlock(&mut self, tx: TxId, n: EntityId) -> Result<Step, DdagViolation> {
        let st = self
            .txs
            .get_mut(&tx)
            .ok_or(DdagViolation::UnknownTransaction(tx))?;
        if !st.holding.remove(&n) {
            return Err(DdagViolation::NotHolding(tx, n));
        }
        self.table.release(tx, n, LockMode::Exclusive);
        Ok(Step::unlock_exclusive(n))
    }

    /// `ACCESS` node `n`: a read immediately followed by a write (under the
    /// held lock, per L1). Emits `(R n)(W n)`.
    pub fn access(&mut self, tx: TxId, n: EntityId) -> Result<Vec<Step>, DdagViolation> {
        let st = self.state(tx)?;
        if !st.holding.contains(&n) {
            return Err(DdagViolation::NotHolding(tx, n));
        }
        if !self.graph.has_node(n) {
            return Err(DdagViolation::NoSuchNode(n));
        }
        Ok(vec![Step::read(n), Step::write(n)])
    }

    /// `INSERT` node `n` (under the held lock). Emits `(I n)`.
    pub fn insert_node(&mut self, tx: TxId, n: EntityId) -> Result<Vec<Step>, DdagViolation> {
        let st = self.state(tx)?;
        if !st.holding.contains(&n) {
            return Err(DdagViolation::NotHolding(tx, n));
        }
        if self.graph.has_node(n) {
            return Err(DdagViolation::NodeExists(n));
        }
        if self.deleted.contains(&n) {
            return Err(DdagViolation::ReinsertionForbidden(n));
        }
        self.graph.add_node(n).expect("checked absent");
        Ok(vec![Step::insert(n)])
    }

    /// `DELETE` node `n` (under the held lock; all incident edges must have
    /// been deleted first). Emits `(D n)`.
    pub fn delete_node(&mut self, tx: TxId, n: EntityId) -> Result<Vec<Step>, DdagViolation> {
        let st = self.state(tx)?;
        if !st.holding.contains(&n) {
            return Err(DdagViolation::NotHolding(tx, n));
        }
        if !self.graph.has_node(n) {
            return Err(DdagViolation::NoSuchNode(n));
        }
        match self.graph.remove_node(n) {
            Ok(()) => {}
            Err(slp_graph::GraphError::NodeHasEdges(_)) => {
                return Err(DdagViolation::NodeHasEdges(n))
            }
            Err(_) => unreachable!("existence checked"),
        }
        self.deleted.insert(n);
        Ok(vec![Step::delete(n)])
    }

    /// The entity id standing for edge `(a, b)`, if it currently exists.
    pub fn edge_entity(&self, a: EntityId, b: EntityId) -> Option<EntityId> {
        self.edge_entities.get(&(a, b)).copied()
    }

    /// `INSERT` edge `(a, b)`: both endpoints must be held (L1), the edge
    /// must not exist, and it must not create a cycle. Emits
    /// `(LX e)(I e)` on a fresh edge entity `e` (released at finish).
    pub fn insert_edge(
        &mut self,
        tx: TxId,
        a: EntityId,
        b: EntityId,
    ) -> Result<Vec<Step>, DdagViolation> {
        let st = self.state(tx)?;
        if !st.holding.contains(&a) {
            return Err(DdagViolation::NotHolding(tx, a));
        }
        if !st.holding.contains(&b) {
            return Err(DdagViolation::NotHolding(tx, b));
        }
        if !self.graph.has_node(a) {
            return Err(DdagViolation::NoSuchNode(a));
        }
        if !self.graph.has_node(b) {
            return Err(DdagViolation::NoSuchNode(b));
        }
        if self.graph.has_edge(a, b) {
            return Err(DdagViolation::EdgeExists(a, b));
        }
        if dag::would_create_cycle(&self.graph, a, b) {
            return Err(DdagViolation::WouldCreateCycle(a, b));
        }
        self.graph.add_edge(a, b).expect("checked");
        let e = self.fresh_edge_entity(a, b);
        self.edge_entities.insert((a, b), e);
        let st = self.txs.get_mut(&tx).expect("active");
        st.edge_locks.push(e);
        self.table.grant(tx, e, LockMode::Exclusive);
        Ok(vec![Step::lock_exclusive(e), Step::insert(e)])
    }

    /// `DELETE` edge `(a, b)`: both endpoints must be held (L1). Emits
    /// `(LX e)(D e)` (edge-entity lock released at finish), or just
    /// `(D e)` if this transaction inserted the edge itself.
    pub fn delete_edge(
        &mut self,
        tx: TxId,
        a: EntityId,
        b: EntityId,
    ) -> Result<Vec<Step>, DdagViolation> {
        let st = self.state(tx)?;
        if !st.holding.contains(&a) {
            return Err(DdagViolation::NotHolding(tx, a));
        }
        if !st.holding.contains(&b) {
            return Err(DdagViolation::NotHolding(tx, b));
        }
        let Some(e) = self.edge_entities.get(&(a, b)).copied() else {
            return Err(DdagViolation::NoSuchEdge(a, b));
        };
        let mut steps = Vec::with_capacity(2);
        let already_holding = self.txs.get(&tx).expect("active").edge_locks.contains(&e);
        if !already_holding {
            if let Some(holder) = self.table.conflicting_holder(tx, e, LockMode::Exclusive) {
                return Err(DdagViolation::LockConflict(e, holder));
            }
            self.table.grant(tx, e, LockMode::Exclusive);
            self.txs.get_mut(&tx).expect("active").edge_locks.push(e);
            steps.push(Step::lock_exclusive(e));
        }
        self.graph.remove_edge(a, b).expect("edge tracked");
        self.edge_entities.remove(&(a, b));
        self.deleted.insert(e);
        steps.push(Step::delete(e));
        Ok(steps)
    }

    /// Finishes `tx`: releases every lock it still holds (nodes, then edge
    /// entities) and retires it. Emits the unlock steps.
    pub fn finish(&mut self, tx: TxId) -> Result<Vec<Step>, DdagViolation> {
        let st = self
            .txs
            .remove(&tx)
            .ok_or(DdagViolation::UnknownTransaction(tx))?;
        let mut steps = Vec::new();
        for n in st.holding {
            self.table.release(tx, n, LockMode::Exclusive);
            steps.push(Step::unlock_exclusive(n));
        }
        for e in st.edge_locks {
            self.table.release(tx, e, LockMode::Exclusive);
            steps.push(Step::unlock_exclusive(e));
        }
        Ok(steps)
    }

    /// Aborts `tx`: releases all locks without further structural changes.
    /// (Undo/recovery is outside the paper's model.) Emits unlock steps.
    pub fn abort(&mut self, tx: TxId) -> Vec<Step> {
        self.finish(tx).unwrap_or_default()
    }

    fn fresh_edge_entity(&mut self, a: EntityId, b: EntityId) -> EntityId {
        self.edge_seq += 1;
        let name = format!(
            "edge({},{})#{}",
            self.universe.name(a).to_owned(),
            self.universe.name(b).to_owned(),
            self.edge_seq
        );
        self.universe.entity(&name)
    }

    /// The rule switches this engine enforces.
    pub fn config(&self) -> DdagConfig {
        self.config
    }
}

// ---------------------------------------------------------------------
// The unified policy API
// ---------------------------------------------------------------------

use crate::api::{AccessIntent, PolicyAction, PolicyEngine, PolicyResponse, PolicyViolation};

/// Folds an engine result into a [`PolicyResponse`], routing lock
/// conflicts to the wait channel and rule violations to the abort channel.
fn respond(result: Result<Vec<Step>, DdagViolation>) -> PolicyResponse {
    match result {
        Ok(steps) => PolicyResponse::Granted(steps),
        Err(DdagViolation::LockConflict(entity, holder)) => {
            PolicyResponse::Conflict { entity, holder }
        }
        Err(v) => PolicyResponse::Violation(PolicyViolation::Ddag(v)),
    }
}

impl PolicyEngine for DdagEngine {
    fn name(&self) -> &'static str {
        match (
            self.config.require_all_predecessors,
            self.config.require_held_predecessor,
        ) {
            (true, true) => "DDAG",
            (true, false) => "DDAG-no-held-pred",
            (false, true) => "DDAG-no-all-preds",
            (false, false) => "DDAG-no-L5",
        }
    }

    fn begin(
        &mut self,
        tx: TxId,
        _intent: &AccessIntent,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        DdagEngine::begin(self, tx).map_err(PolicyViolation::Ddag)?;
        Ok(None)
    }

    fn request(&mut self, tx: TxId, action: PolicyAction) -> PolicyResponse {
        let result = match action {
            PolicyAction::Lock(n) => self
                .check_lock(tx, n)
                .map(|()| vec![self.lock(tx, n).expect("checked")]),
            PolicyAction::Unlock(n) => self.unlock(tx, n).map(|s| vec![s]),
            PolicyAction::Access(n) => self.access(tx, n),
            PolicyAction::InsertNode(n) => self.insert_node(tx, n),
            PolicyAction::DeleteNode(n) => self.delete_node(tx, n),
            PolicyAction::InsertEdge(a, b) => self.insert_edge(tx, a, b),
            PolicyAction::DeleteEdge(a, b) => self.delete_edge(tx, a, b),
            unsupported => {
                return PolicyResponse::Violation(PolicyViolation::Unsupported {
                    policy: PolicyEngine::name(self),
                    action: unsupported,
                })
            }
        };
        respond(result)
    }

    fn finish(&mut self, tx: TxId) -> Result<Vec<Step>, PolicyViolation> {
        DdagEngine::finish(self, tx).map_err(PolicyViolation::Ddag)
    }

    fn abort(&mut self, tx: TxId) -> Vec<Step> {
        DdagEngine::abort(self, tx)
    }

    fn graph(&self) -> Option<&DiGraph> {
        Some(&self.graph)
    }

    fn intern_entity(&mut self, name: &str) -> Option<EntityId> {
        Some(self.universe.entity(name))
    }

    fn structural_entities(&self) -> Option<Vec<EntityId>> {
        let mut entities: Vec<EntityId> = self.graph.nodes().collect();
        entities.extend(self.edge_entities.values().copied());
        Some(entities)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 3 setting: chain 1 -> 2 -> 3 -> 4.
    fn fig3_engine() -> (DdagEngine, Vec<EntityId>) {
        let mut u = Universe::new();
        let ids = u.entities(["1", "2", "3", "4"]);
        let mut g = DiGraph::new();
        for &n in &ids {
            g.add_node(n).unwrap();
        }
        g.add_edge(ids[0], ids[1]).unwrap();
        g.add_edge(ids[1], ids[2]).unwrap();
        g.add_edge(ids[2], ids[3]).unwrap();
        (DdagEngine::new(u, g), ids)
    }

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    #[test]
    fn engine_starts_rooted() {
        let (engine, _) = fig3_engine();
        assert!(engine.is_rooted_dag());
    }

    #[test]
    fn fig3_walkthrough_without_edge_insert() {
        let (mut eng, ids) = fig3_engine();
        let (n2, n3, n4) = (ids[1], ids[2], ids[3]);
        // T1 begins by locking node 2 (L4).
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), n2).unwrap();
        // Then locks 3 and 4 (L5) ...
        eng.lock(t(1), n3).unwrap();
        eng.lock(t(1), n4).unwrap();
        // ... then unlocks 3.
        eng.unlock(t(1), n3).unwrap();
        // T2 begins by locking node 3.
        eng.begin(t(2)).unwrap();
        eng.lock(t(2), n3).unwrap();
        // T1 releases 4; T2 proceeds by locking 4.
        eng.unlock(t(1), n4).unwrap();
        eng.lock(t(2), n4).unwrap();
        assert_eq!(eng.holding(t(2)), vec![n3, n4]);
    }

    #[test]
    fn fig3_edge_insert_forces_t2_abort() {
        let (mut eng, ids) = fig3_engine();
        let (n2, n3, n4) = (ids[1], ids[2], ids[3]);
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), n2).unwrap();
        eng.lock(t(1), n3).unwrap();
        eng.lock(t(1), n4).unwrap();
        eng.unlock(t(1), n3).unwrap();
        // T1 adds the edge (2, 4) while holding both 2 and 4 (L1).
        eng.insert_edge(t(1), n2, n4).unwrap();
        eng.begin(t(2)).unwrap();
        eng.lock(t(2), n3).unwrap();
        eng.unlock(t(1), n4).unwrap();
        // T2 cannot lock 4: node 2 is now a predecessor of 4 and T2 has not
        // locked it.
        assert_eq!(
            eng.check_lock(t(2), n4),
            Err(DdagViolation::PredecessorsNotLocked(t(2), n4))
        );
        // T2 must abort and start from node 2.
        let released = eng.abort(t(2));
        assert_eq!(released.len(), 1); // UX 3
                                       // The restarted T2 may begin at node 2 (L4) — but must wait for T1
                                       // to release its lock.
        eng.begin(t(3)).unwrap();
        assert_eq!(
            eng.check_lock(t(3), n2),
            Err(DdagViolation::LockConflict(n2, t(1)))
        );
        eng.finish(t(1)).unwrap();
        assert!(eng.lock(t(3), n2).is_ok());
    }

    #[test]
    fn l3_rejects_relock_even_after_unlock() {
        let (mut eng, ids) = fig3_engine();
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), ids[1]).unwrap();
        eng.unlock(t(1), ids[1]).unwrap();
        assert_eq!(
            eng.check_lock(t(1), ids[1]),
            Err(DdagViolation::Relock(t(1), ids[1]))
        );
    }

    #[test]
    fn l5_requires_all_predecessors_locked_in_past() {
        let (mut eng, ids) = fig3_engine();
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), ids[0]).unwrap();
        // Locking 3 (pred = 2, never locked) fails.
        assert_eq!(
            eng.check_lock(t(1), ids[2]),
            Err(DdagViolation::PredecessorsNotLocked(t(1), ids[2]))
        );
    }

    #[test]
    fn l5_requires_a_presently_held_predecessor() {
        let (mut eng, ids) = fig3_engine();
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), ids[1]).unwrap(); // 2
        eng.lock(t(1), ids[2]).unwrap(); // 3
        eng.unlock(t(1), ids[2]).unwrap(); // release 3 (pred of 4)
        assert_eq!(
            eng.check_lock(t(1), ids[3]),
            Err(DdagViolation::NoHeldPredecessor(t(1), ids[3]))
        );
    }

    #[test]
    fn mutant_configs_disable_specific_clauses() {
        let (_, ids) = fig3_engine();
        let mk = |config| {
            let mut u = Universe::new();
            let ids2 = u.entities(["1", "2", "3", "4"]);
            assert_eq!(ids2, ids);
            let mut g = DiGraph::new();
            for &n in &ids2 {
                g.add_node(n).unwrap();
            }
            g.add_edge(ids2[0], ids2[1]).unwrap();
            g.add_edge(ids2[1], ids2[2]).unwrap();
            g.add_edge(ids2[2], ids2[3]).unwrap();
            DdagEngine::with_config(u, g, config)
        };
        // Without the held-predecessor rule the lock in the previous test
        // succeeds.
        let mut eng = mk(DdagConfig::without_held_predecessor_rule());
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), ids[1]).unwrap();
        eng.lock(t(1), ids[2]).unwrap();
        eng.unlock(t(1), ids[2]).unwrap();
        assert!(eng.lock(t(1), ids[3]).is_ok());
        // Without the all-predecessors rule, jumping to 3 from 1 succeeds
        // as long as *a* predecessor is held... it is not (pred of 3 is 2),
        // so it still fails on the holding clause; jump from 2 to 4 works.
        let mut eng = mk(DdagConfig::without_all_predecessors_rule());
        eng.begin(t(2)).unwrap();
        eng.lock(t(2), ids[2]).unwrap(); // first lock: 3
        assert!(eng.lock(t(2), ids[3]).is_ok()); // 4: holds pred 3; "all" not required
    }

    #[test]
    fn insert_node_then_connect() {
        let (mut eng, ids) = fig3_engine();
        let n5 = eng.intern("5");
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), ids[1]).unwrap();
        // L2: lock a node being inserted at any time.
        eng.lock(t(1), n5).unwrap();
        eng.insert_node(t(1), n5).unwrap();
        let steps = eng.insert_edge(t(1), ids[1], n5).unwrap();
        assert_eq!(steps.len(), 2);
        assert!(eng.graph().has_edge(ids[1], n5));
        // The graph remains a rooted DAG.
        assert!(eng.is_rooted_dag());
        let unlocks = eng.finish(t(1)).unwrap();
        assert_eq!(unlocks.len(), 3); // node 2, node 99, edge entity
    }

    #[test]
    fn deleted_nodes_cannot_return() {
        let (mut eng, ids) = fig3_engine();
        let n4 = ids[3];
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), ids[2]).unwrap();
        eng.lock(t(1), n4).unwrap();
        eng.delete_edge(t(1), ids[2], n4).unwrap();
        eng.delete_node(t(1), n4).unwrap();
        eng.finish(t(1)).unwrap();
        eng.begin(t(2)).unwrap();
        assert_eq!(
            eng.check_lock(t(2), n4),
            Err(DdagViolation::ReinsertionForbidden(n4))
        );
    }

    #[test]
    fn delete_node_requires_no_incident_edges() {
        let (mut eng, ids) = fig3_engine();
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), ids[2]).unwrap();
        eng.lock(t(1), ids[3]).unwrap();
        assert_eq!(
            eng.delete_node(t(1), ids[3]),
            Err(DdagViolation::NodeHasEdges(ids[3]))
        );
    }

    #[test]
    fn edge_insert_rejects_cycles() {
        let (mut eng, ids) = fig3_engine();
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), ids[1]).unwrap();
        eng.lock(t(1), ids[2]).unwrap();
        eng.lock(t(1), ids[3]).unwrap();
        assert_eq!(
            eng.insert_edge(t(1), ids[3], ids[1]),
            Err(DdagViolation::WouldCreateCycle(ids[3], ids[1]))
        );
    }

    #[test]
    fn access_requires_lock_and_existence() {
        let (mut eng, ids) = fig3_engine();
        eng.begin(t(1)).unwrap();
        assert_eq!(
            eng.access(t(1), ids[1]),
            Err(DdagViolation::NotHolding(t(1), ids[1]))
        );
        eng.lock(t(1), ids[1]).unwrap();
        assert_eq!(
            eng.access(t(1), ids[1]),
            Ok(vec![Step::read(ids[1]), Step::write(ids[1])])
        );
    }

    #[test]
    fn lock_conflicts_are_reported_not_policy_errors() {
        let (mut eng, ids) = fig3_engine();
        eng.begin(t(1)).unwrap();
        eng.begin(t(2)).unwrap();
        eng.lock(t(1), ids[1]).unwrap();
        assert_eq!(
            eng.check_lock(t(2), ids[1]),
            Err(DdagViolation::LockConflict(ids[1], t(1)))
        );
        assert_eq!(eng.lock_holder(ids[1]), Some(t(1)));
    }

    #[test]
    fn same_transaction_can_delete_its_own_inserted_edge() {
        let (mut eng, ids) = fig3_engine();
        eng.begin(t(1)).unwrap();
        eng.lock(t(1), ids[1]).unwrap();
        eng.lock(t(1), ids[2]).unwrap();
        eng.lock(t(1), ids[3]).unwrap();
        // Delete the existing edge (2,3) and reinsert a fresh (2,3)? No —
        // reinsertion uses a fresh entity, so it is allowed.
        eng.delete_edge(t(1), ids[1], ids[2]).unwrap();
        let steps = eng.insert_edge(t(1), ids[1], ids[2]).unwrap();
        assert_eq!(steps.len(), 2);
        // And delete its own fresh edge without a second lock step.
        let steps = eng.delete_edge(t(1), ids[1], ids[2]).unwrap();
        assert_eq!(
            steps.len(),
            1,
            "no relock of the edge entity it already holds"
        );
    }

    #[test]
    fn begin_twice_fails() {
        let (mut eng, _) = fig3_engine();
        eng.begin(t(1)).unwrap();
        assert_eq!(eng.begin(t(1)), Err(DdagViolation::AlreadyBegun(t(1))));
    }
}
