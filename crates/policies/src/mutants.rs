//! Deliberately *unsafe* lockers, used as negative controls.
//!
//! The correctness experiments (E7) need policies whose schedules are
//! sometimes nonserializable, to show (a) the verifier catches them and
//! (b) the paper's rules are load-bearing. Besides the per-policy mutant
//! configs ([`crate::ddag::DdagConfig`], [`crate::altruistic::AltruisticConfig`]),
//! this module provides the classic straw man: *short locks* — each data
//! step individually wrapped in lock/unlock. Well formed and legal, but
//! non-two-phase with no compensating structure, hence unsafe.

use slp_core::{DataOp, LockMode, LockedTransaction, Operation, Step, Transaction};
use std::collections::HashMap;

/// Locks `t` with **short locks**: `(L e) op (U e)` around every data step.
/// If the transaction touches an entity several times, all its operations
/// on that entity are performed under one lock spanning from first to last
/// use (to respect at-most-once locking), which is still non-two-phase
/// across entities.
pub fn lock_short(t: &Transaction) -> LockedTransaction {
    // Span per entity: [first use, last use].
    let mut last_use: HashMap<slp_core::EntityId, usize> = HashMap::new();
    for (i, s) in t.steps.iter().enumerate() {
        last_use.insert(s.entity, i);
    }
    let needs_exclusive = |e| {
        t.steps
            .iter()
            .any(|s| s.entity == e && s.op != Operation::Data(DataOp::Read))
    };
    let mut locked: HashMap<slp_core::EntityId, LockMode> = HashMap::new();
    let mut steps = Vec::with_capacity(t.steps.len() * 3);
    for (i, s) in t.steps.iter().enumerate() {
        locked.entry(s.entity).or_insert_with(|| {
            let mode = if needs_exclusive(s.entity) {
                LockMode::Exclusive
            } else {
                LockMode::Shared
            };
            steps.push(Step::lock(mode, s.entity));
            mode
        });
        steps.push(*s);
        if last_use[&s.entity] == i {
            steps.push(Step::unlock(locked[&s.entity], s.entity));
        }
    }
    LockedTransaction::new(t.id, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slp_core::{EntityId, TxId};

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn short_locks_are_well_formed_but_not_two_phase() {
        let t = Transaction::new(TxId(1), vec![Step::write(e(0)), Step::write(e(1))]);
        let locked = lock_short(&t);
        assert!(locked.validate().is_ok());
        assert!(!locked.is_two_phase());
    }

    #[test]
    fn repeated_entity_spans_one_lock() {
        let t = Transaction::new(
            TxId(1),
            vec![Step::read(e(0)), Step::write(e(1)), Step::write(e(0))],
        );
        let locked = lock_short(&t);
        assert!(locked.validate().is_ok());
        // Entity 0 locked exactly once despite two uses.
        let locks_on_0 = locked
            .steps
            .iter()
            .filter(|s| s.is_lock() && s.entity == e(0))
            .count();
        assert_eq!(locks_on_0, 1);
        // And in exclusive mode, because of the later write.
        assert!(locked.steps.contains(&Step::lock_exclusive(e(0))));
    }

    #[test]
    fn single_entity_transactions_are_trivially_two_phase() {
        let t = Transaction::new(TxId(1), vec![Step::write(e(0))]);
        let locked = lock_short(&t);
        assert!(locked.is_two_phase());
    }

    #[test]
    fn classic_unsafe_interleaving_is_legal_and_nonserializable() {
        use slp_core::{is_serializable, Schedule, TxId};
        // Two short-locked transactions both writing x then y.
        let t1 = lock_short(&Transaction::new(
            TxId(1),
            vec![Step::write(e(0)), Step::write(e(1))],
        ));
        let t2 = lock_short(&Transaction::new(
            TxId(2),
            vec![Step::write(e(0)), Step::write(e(1))],
        ));
        // Interleave: T1 finishes x, T2 does x AND y, then T1 does y.
        let txs = [t1, t2];
        let order = [
            TxId(1),
            TxId(1),
            TxId(1), // LX x, W x, UX x
            TxId(2),
            TxId(2),
            TxId(2),
            TxId(2),
            TxId(2),
            TxId(2), // all of T2
            TxId(1),
            TxId(1),
            TxId(1), // LX y, W y, UX y
        ];
        let s = Schedule::interleave(&txs, &order).unwrap();
        assert!(s.is_legal());
        assert!(
            !is_serializable(&s),
            "short locks admit nonserializable schedules"
        );
    }
}
