//! The unified policy API: one engine interface over every locking policy.
//!
//! The paper's central observation is that 2PL, the DDAG policy (L1–L5),
//! altruistic locking (AL1–AL3), and the dynamic tree policy (DT0–DT3) are
//! all instances of a single abstraction — a *locking policy* whose
//! schedules must be legal, proper, and serializable. This module is that
//! abstraction made executable:
//!
//! * [`PolicyAction`] — the shared action vocabulary a transaction can
//!   request (locks, data operations, structural mutations);
//! * [`PolicyEngine`] — the object-safe engine trait
//!   (`begin`/`request`/`finish`/`abort`) every policy implements;
//! * [`PolicyResponse`] — the typed outcome of a request: granted (with
//!   emitted [`Step`]s), a lock conflict (the caller may *wait*), or a rule
//!   violation (the transaction must *abort*);
//! * [`PolicyViolation`] — the shared violation type wrapping each
//!   policy's rule-violation enum, so callers classify aborts without
//!   string matching;
//! * [`AccessIntent`] — the declared access set handed to `begin` (needed
//!   by plan-precomputing policies such as DTR, per rule DT2).
//!
//! Concrete engines ([`crate::DdagEngine`], [`crate::AltruisticEngine`],
//! [`crate::DtrEngine`], [`crate::TwoPhaseEngine`]) implement the trait in
//! their own modules; [`crate::PolicyRegistry`] builds any of them — mutant
//! negative controls included — as a `Box<dyn PolicyEngine>` from a
//! [`crate::PolicyKind`] or a name.
//!
//! # Waiting vs aborting
//!
//! Every engine distinguishes two failure classes, and the distinction is
//! load-bearing for schedulers: a [`PolicyResponse::Conflict`] means the
//! request is *legal* but the lock is currently held — the transaction may
//! park and retry the same request later; a [`PolicyResponse::Violation`]
//! means the policy forbids the action outright (e.g. the Fig. 3 scenario
//! where a concurrent edge insert invalidates a traversal's lock plan) —
//! the transaction must abort. [`PolicyViolation::is_fatal`] further
//! separates violations that can succeed on retry (rule state is
//! transient) from ones that cannot (the request itself is malformed).

use crate::altruistic::AltruisticViolation;
use crate::ddag::DdagViolation;
use crate::dtr::DtrViolation;
use crate::tree::TreeLockViolation;
use slp_core::{DataOp, EntityId, Step, TxId};
use slp_graph::{DiGraph, Forest};
use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;

/// One action a transaction can request from a [`PolicyEngine`].
///
/// Not every policy supports every action (only the DDAG policy mutates a
/// shared graph, only altruistic locking has a declared locked point); an
/// engine answers an action outside its vocabulary with
/// [`PolicyViolation::Unsupported`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum PolicyAction {
    /// Acquire an exclusive lock on the entity.
    Lock(EntityId),
    /// Release the lock on the entity (a *donation* under altruistic
    /// locking when it happens before the locked point).
    Unlock(EntityId),
    /// `ACCESS` the entity: a read immediately followed by a write.
    Access(EntityId),
    /// Read the entity.
    Read(EntityId),
    /// Write the entity.
    Write(EntityId),
    /// Insert the entity as a new node of the shared structure.
    InsertNode(EntityId),
    /// Delete the node from the shared structure.
    DeleteNode(EntityId),
    /// Insert the edge `(a, b)` into the shared graph.
    InsertEdge(EntityId, EntityId),
    /// Delete the edge `(a, b)` from the shared graph.
    DeleteEdge(EntityId, EntityId),
    /// Declare the locked point: the transaction will acquire no further
    /// locks (altruistic locking learns wake dissolution from this).
    LockedPoint,
}

impl fmt::Display for PolicyAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use PolicyAction::*;
        match self {
            Lock(e) => write!(f, "lock {e}"),
            Unlock(e) => write!(f, "unlock {e}"),
            Access(e) => write!(f, "access {e}"),
            Read(e) => write!(f, "read {e}"),
            Write(e) => write!(f, "write {e}"),
            InsertNode(e) => write!(f, "insert node {e}"),
            DeleteNode(e) => write!(f, "delete node {e}"),
            InsertEdge(a, b) => write!(f, "insert edge ({a}, {b})"),
            DeleteEdge(a, b) => write!(f, "delete edge ({a}, {b})"),
            LockedPoint => write!(f, "locked point"),
        }
    }
}

/// Why a plan for a job could not be constructed (planner-level failures,
/// as opposed to the per-policy *rule* violations).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlanViolation {
    /// The job requests nothing.
    EmptyJob,
    /// The policy needs a shared rooted graph to plan against, but the
    /// engine maintains none (policy/planner mismatch).
    NoGraph,
    /// The shared graph has no root.
    NotRooted,
    /// A target node is not in the shared graph.
    TargetMissing(EntityId),
    /// A target node is unreachable from the root.
    UnreachableFromRoot(EntityId),
    /// The targets have no common dominator to start the traversal from.
    NoCommonDominator,
    /// The shared graph contains a cycle (no topological lock order).
    CyclicGraph,
}

impl PlanViolation {
    /// Whether retrying the job can never succeed. Graph-shape failures
    /// ([`PlanViolation::NotRooted`], [`PlanViolation::TargetMissing`], …)
    /// are *transient* under concurrent structural churn — e.g. a freshly
    /// inserted node is briefly a second root until its edge connects it —
    /// so only request-shape failures are fatal.
    pub fn is_fatal(&self) -> bool {
        matches!(self, PlanViolation::EmptyJob | PlanViolation::NoGraph)
    }
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use PlanViolation::*;
        match self {
            EmptyJob => write!(f, "the job requests nothing"),
            NoGraph => write!(f, "the policy maintains no shared graph to plan against"),
            NotRooted => write!(f, "the shared graph has no root"),
            TargetMissing(e) => write!(f, "target {e} is not in the shared graph"),
            UnreachableFromRoot(e) => write!(f, "target {e} is unreachable from the root"),
            NoCommonDominator => write!(f, "the targets have no common dominator"),
            CyclicGraph => write!(f, "the shared graph contains a cycle"),
        }
    }
}

impl std::error::Error for PlanViolation {}

/// A policy violation, unified across every engine. Wraps the per-policy
/// rule-violation enums so callers — the simulator's abort classification
/// above all — can match on structure instead of parsing strings.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PolicyViolation {
    /// A DDAG rule (L1–L5) or graph-discipline violation.
    Ddag(DdagViolation),
    /// An altruistic locking rule (AL1–AL3) violation.
    Altruistic(AltruisticViolation),
    /// A dynamic tree policy (DT0–DT3) violation.
    Dtr(DtrViolation),
    /// A tree-locking violation (the \[SK80\] validator).
    TreeLock(TreeLockViolation),
    /// Plan construction failed before the transaction touched the engine.
    Plan(PlanViolation),
    /// The transaction has no plan (it was never begun, or its plan was
    /// consumed or discarded).
    NoPlan(TxId),
    /// The requested action is off the transaction's precomputed plan
    /// (plan-driven policies such as DTR execute exactly the plan declared
    /// at `begin`, per rule DT2).
    OffPlan(TxId, PolicyAction),
    /// The action is outside this policy's vocabulary.
    Unsupported {
        /// The policy that rejected the action.
        policy: &'static str,
        /// The rejected action.
        action: PolicyAction,
    },
}

impl PolicyViolation {
    /// Whether retrying the whole transaction can never succeed: the
    /// failure is in the request's *shape* (malformed job, action outside
    /// the policy's vocabulary, plan deviation), not in transient
    /// lock-table or rule state. Schedulers should drop fatal jobs instead
    /// of abort-and-retrying them forever.
    pub fn is_fatal(&self) -> bool {
        match self {
            PolicyViolation::NoPlan(_)
            | PolicyViolation::OffPlan(..)
            | PolicyViolation::Unsupported { .. } => true,
            PolicyViolation::Plan(p) => p.is_fatal(),
            PolicyViolation::Dtr(DtrViolation::Plan(_)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for PolicyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyViolation::Ddag(v) => write!(f, "DDAG: {v}"),
            PolicyViolation::Altruistic(v) => write!(f, "altruistic: {v}"),
            PolicyViolation::Dtr(v) => write!(f, "DTR: {v}"),
            PolicyViolation::TreeLock(v) => write!(f, "tree locking: {v}"),
            PolicyViolation::Plan(v) => write!(f, "plan: {v}"),
            PolicyViolation::NoPlan(tx) => write!(f, "{tx} has no plan"),
            PolicyViolation::OffPlan(tx, a) => {
                write!(f, "{tx} requested \"{a}\" off its precomputed plan")
            }
            PolicyViolation::Unsupported { policy, action } => {
                write!(f, "{policy} does not support \"{action}\"")
            }
        }
    }
}

impl std::error::Error for PolicyViolation {}

impl From<PlanViolation> for PolicyViolation {
    fn from(v: PlanViolation) -> Self {
        PolicyViolation::Plan(v)
    }
}

impl From<TreeLockViolation> for PolicyViolation {
    fn from(v: TreeLockViolation) -> Self {
        PolicyViolation::TreeLock(v)
    }
}

/// How much shared state a grant/refuse decision of this engine reads
/// ([`PolicyEngine::grant_scope`]).
///
/// Schedulers use this to decide whether a request can bypass the
/// engine's serialization point: a [`GrantScope::PerEntity`] engine
/// promises that, for the plain lock/access vocabulary
/// ([`PolicyAction::Lock`] / [`PolicyAction::Access`] /
/// [`PolicyAction::Read`] / [`PolicyAction::Write`]), granting is purely
/// a function of the requested entity's *current holder set* — so an
/// atomic per-entity lock word can take the decision without consulting
/// the engine at all. The promise extends to release discipline:
/// fast-path transactions hold every lock to commit (no early release,
/// no donation wake sets), request no structural mutations, and never
/// relock — any plan outside that shape must be routed through the
/// engine, which remains the authority for it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GrantScope {
    /// A grant may read global policy state (wake sets, the shared graph,
    /// precomputed plans): every request must serialize on the engine.
    #[default]
    Global,
    /// A grant for the plain lock/access vocabulary depends only on the
    /// requested entity's holder set: eligible requests may be decided by
    /// a per-entity atomic lock word, bypassing the engine entirely.
    PerEntity,
}

/// The outcome of a [`PolicyEngine::request`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PolicyResponse {
    /// The action ran; these [`Step`]s were emitted into the schedule.
    Granted(Vec<Step>),
    /// The action needs a lock currently held by `holder`. The request is
    /// otherwise legal: the transaction may wait and re-request.
    Conflict {
        /// The contended entity.
        entity: EntityId,
        /// The transaction holding it.
        holder: TxId,
    },
    /// The policy forbids the action: the transaction must abort.
    Violation(PolicyViolation),
}

impl PolicyResponse {
    /// The emitted steps, if the action was granted.
    pub fn granted(self) -> Option<Vec<Step>> {
        match self {
            PolicyResponse::Granted(steps) => Some(steps),
            _ => None,
        }
    }

    /// The emitted steps; panics (with the refusal) if not granted.
    pub fn expect_granted(self) -> Vec<Step> {
        match self {
            PolicyResponse::Granted(steps) => steps,
            PolicyResponse::Conflict { entity, holder } => {
                panic!("request not granted: {entity} is locked by {holder}")
            }
            PolicyResponse::Violation(v) => panic!("request not granted: {v}"),
        }
    }

    /// The violation, if the action was refused outright.
    pub fn violation(self) -> Option<PolicyViolation> {
        match self {
            PolicyResponse::Violation(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the action was granted.
    pub fn is_granted(&self) -> bool {
        matches!(self, PolicyResponse::Granted(_))
    }
}

/// The access set a transaction declares at [`PolicyEngine::begin`]:
/// entity → the data operations the transaction will perform there.
///
/// Plan-precomputing policies (DTR, rule DT2) *require* the declaration and
/// return the realized plan from `begin`; on-demand policies ignore it.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AccessIntent {
    /// Entity → declared data operations, in plan order per entity.
    pub ops: BTreeMap<EntityId, Vec<DataOp>>,
}

impl AccessIntent {
    /// An empty declaration (for policies that lock on demand).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Declares an `ACCESS` (read + write) on each target.
    pub fn access(targets: impl IntoIterator<Item = EntityId>) -> Self {
        AccessIntent {
            ops: targets
                .into_iter()
                .map(|e| (e, vec![DataOp::Read, DataOp::Write]))
                .collect(),
        }
    }

    /// Whether nothing is declared.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A locking policy as one object-safe engine.
///
/// An engine owns the policy's shared state (lock table, rule bookkeeping,
/// and — for dynamic policies — the shared graph or forest), enforces
/// every rule *online*, and emits the [`Step`]s realizing each granted
/// action so callers can record and verify the interleaved schedule.
///
/// The lifecycle per transaction is `begin` → any number of `request`s →
/// `finish` (or `abort` at any point). `begin` returns `Some(plan)` when
/// the policy precomputes the transaction's whole action sequence (DTR);
/// callers then drive `request` with exactly those actions in order.
///
/// `Send + Sync` is a supertrait so one engine can sit behind a lock and
/// serve requests from many worker threads (the `slp-runtime` service).
/// Engines have no interior mutability — all mutation goes through `&mut
/// self` — so every in-tree engine satisfies the bounds automatically.
pub trait PolicyEngine: Send + Sync {
    /// Display name of the policy (rows of the E9 tables; mutants carry a
    /// distinguishing suffix).
    fn name(&self) -> &'static str;

    /// Starts `tx` with the declared `intent`. Returns the precomputed
    /// action plan if this policy plans at start (rule DT2), `None` if it
    /// serves actions on demand.
    fn begin(
        &mut self,
        tx: TxId,
        intent: &AccessIntent,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation>;

    /// Requests one action for `tx`. See [`PolicyResponse`] for the
    /// wait/abort distinction.
    fn request(&mut self, tx: TxId, action: PolicyAction) -> PolicyResponse;

    /// Finishes `tx`: releases every lock it still holds and retires it.
    /// Returns the emitted unlock steps.
    fn finish(&mut self, tx: TxId) -> Result<Vec<Step>, PolicyViolation>;

    /// Aborts `tx`: releases all its locks without further structural
    /// changes (undo/recovery is outside the paper's model) and retires
    /// it. Infallible; aborting an unknown transaction is a no-op.
    fn abort(&mut self, tx: TxId) -> Vec<Step>;

    /// The shared rooted graph, if this policy maintains one (DDAG).
    /// Planners use it to lay out traversals against the *current* state.
    fn graph(&self) -> Option<&DiGraph> {
        None
    }

    /// The database forest, if this policy maintains one (DTR).
    fn forest(&self) -> Option<&Forest> {
        None
    }

    /// Interns a fresh entity name, for policies whose universe grows as
    /// structure is inserted (DDAG). `None` if the policy has no universe.
    fn intern_entity(&mut self, _name: &str) -> Option<EntityId> {
        None
    }

    /// The entities that currently exist according to the policy's shared
    /// structure (DDAG: nodes and edge entities), for seeding the initial
    /// [`slp_core::StructuralState`] of a properness check. `None` if the
    /// policy does not track existence (flat-pool policies).
    fn structural_entities(&self) -> Option<Vec<EntityId>> {
        None
    }

    /// How much shared state this engine's grant decisions read — see
    /// [`GrantScope`]. Defaults to [`GrantScope::Global`] (every request
    /// serializes on the engine); only engines whose grants are purely
    /// per-entity (a plain exclusive/shared lock manager) should return
    /// [`GrantScope::PerEntity`].
    fn grant_scope(&self) -> GrantScope {
        GrantScope::Global
    }

    /// Concrete-type escape hatch for policy-specific introspection
    /// (e.g. [`crate::DtrEngine::check_delete`] in the DT3 walkthrough).
    fn as_any(&self) -> &dyn Any;

    /// Mutable form of [`PolicyEngine::as_any`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<P: PolicyEngine + ?Sized> PolicyEngine for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn begin(
        &mut self,
        tx: TxId,
        intent: &AccessIntent,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        (**self).begin(tx, intent)
    }

    fn request(&mut self, tx: TxId, action: PolicyAction) -> PolicyResponse {
        (**self).request(tx, action)
    }

    fn finish(&mut self, tx: TxId) -> Result<Vec<Step>, PolicyViolation> {
        (**self).finish(tx)
    }

    fn abort(&mut self, tx: TxId) -> Vec<Step> {
        (**self).abort(tx)
    }

    fn graph(&self) -> Option<&DiGraph> {
        (**self).graph()
    }

    fn forest(&self) -> Option<&Forest> {
        (**self).forest()
    }

    fn intern_entity(&mut self, name: &str) -> Option<EntityId> {
        (**self).intern_entity(name)
    }

    fn structural_entities(&self) -> Option<Vec<EntityId>> {
        (**self).structural_entities()
    }

    fn grant_scope(&self) -> GrantScope {
        (**self).grant_scope()
    }

    fn as_any(&self) -> &dyn Any {
        (**self).as_any()
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        (**self).as_any_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_and_fatality() {
        let v = PolicyViolation::NoPlan(TxId(3));
        assert!(v.is_fatal());
        assert_eq!(v.to_string(), "T3 has no plan");
        let v = PolicyViolation::Altruistic(AltruisticViolation::Relock(TxId(1), EntityId(2)));
        assert!(!v.is_fatal(), "rule violations are retryable");
        assert!(v.to_string().contains("AL3"));
        let v = PolicyViolation::Unsupported {
            policy: "2PL",
            action: PolicyAction::InsertEdge(EntityId(0), EntityId(1)),
        };
        assert!(v.is_fatal());
        assert!(v.to_string().contains("insert edge"));
        let v = PolicyViolation::Plan(PlanViolation::TargetMissing(EntityId(7)));
        assert!(
            !v.is_fatal(),
            "graph-shape plan failures are transient under structural churn"
        );
        let v = PolicyViolation::Plan(PlanViolation::EmptyJob);
        assert!(v.is_fatal());
    }

    #[test]
    fn response_accessors() {
        let r = PolicyResponse::Granted(vec![Step::read(EntityId(0))]);
        assert!(r.is_granted());
        assert_eq!(r.granted().unwrap().len(), 1);
        let r = PolicyResponse::Conflict {
            entity: EntityId(1),
            holder: TxId(2),
        };
        assert!(!r.is_granted());
        assert!(r.clone().granted().is_none());
        assert!(r.violation().is_none());
        let r = PolicyResponse::Violation(PolicyViolation::NoPlan(TxId(1)));
        assert!(r.violation().is_some());
    }

    #[test]
    fn intent_constructors() {
        assert!(AccessIntent::empty().is_empty());
        let i = AccessIntent::access([EntityId(1), EntityId(2)]);
        assert_eq!(i.ops.len(), 2);
        assert_eq!(i.ops[&EntityId(1)], vec![DataOp::Read, DataOp::Write]);
    }
}
