//! The dynamic tree (DTR) policy — Section 6 \[CM86\].
//!
//! Unlike the DDAG policy, the *database forest* here is created and
//! maintained by the concurrency-control algorithm itself, not by the
//! transactions. Rules (exclusive locks only):
//!
//! * **DT0** — initially the database forest `G` is empty;
//! * **DT1** — two trees are joined by drawing an edge from the root of
//!   `g1` to the root of `g2`; a set of new entities is first connected
//!   into a tree, then joined;
//! * **DT2** — when a transaction `T` starts, join all trees containing
//!   some entity of `A(T)` into a single tree `g`, add the missing
//!   entities of `A(T)`, and **tree-lock** `T` with respect to `g` (the
//!   locked transaction is *precomputed* at start — the paper notes this
//!   is required);
//! * **DT3** — a node `A` may be deleted from the forest if it is not
//!   currently locked and every active transaction remains tree-locked
//!   with respect to some tree of `G(A)` (the forest with `A` removed).
//!
//! [`DtrEngine`] holds the forest, precomputes plans via
//! [`crate::tree::tree_lock_plan`], executes them stepwise (so a scheduler
//! can interleave transactions and wait on lock conflicts), and implements
//! the DT3 garbage-collection check with the
//! [`crate::tree::is_tree_locked`] validator.

use crate::tree::{is_tree_locked, tree_lock_plan, PlanError};
use slp_core::{DataOp, EntityId, LockMode, LockTable, Operation, Step, TxId};
use slp_graph::Forest;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A violation of the DTR rules (or execution-order errors).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DtrViolation {
    /// The transaction was never begun (or already finished).
    UnknownTransaction(TxId),
    /// `begin` called twice.
    AlreadyBegun(TxId),
    /// Plan construction failed.
    Plan(PlanError),
    /// The transaction's plan is already exhausted.
    PlanExhausted(TxId),
    /// Another transaction holds the lock (wait, don't abort).
    LockConflict(EntityId, TxId),
    /// The next plan step would violate tree-locking in the *current*
    /// forest (can only happen if the forest changed illegally).
    ParentNotHeld(TxId, EntityId),
    /// DT3: the node is currently locked.
    NodeLocked(EntityId),
    /// DT3: the node is not in the forest.
    NotInForest(EntityId),
    /// DT3: deleting the node would leave `tx` not tree-locked.
    WouldBreakTreeLocking(TxId),
}

impl fmt::Display for DtrViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use DtrViolation::*;
        match self {
            UnknownTransaction(t) => write!(f, "{t} is not an active transaction"),
            AlreadyBegun(t) => write!(f, "{t} already began"),
            Plan(e) => write!(f, "plan error: {e}"),
            PlanExhausted(t) => write!(f, "{t} has no steps left"),
            LockConflict(e, holder) => write!(f, "{e} is locked by {holder}"),
            ParentNotHeld(t, e) => write!(f, "{t} would lock {e} without holding its parent"),
            NodeLocked(e) => write!(f, "DT3: {e} is currently locked"),
            NotInForest(e) => write!(f, "DT3: {e} is not in the forest"),
            WouldBreakTreeLocking(t) => {
                write!(f, "DT3: deletion would leave {t} not tree-locked")
            }
        }
    }
}

impl std::error::Error for DtrViolation {}

#[derive(Clone, Debug)]
struct DtrTx {
    plan: Vec<Step>,
    cursor: usize,
    holding: BTreeSet<EntityId>,
    locked_any: bool,
}

/// The dynamic tree policy engine.
#[derive(Clone, Debug, Default)]
pub struct DtrEngine {
    forest: Forest,
    table: LockTable,
    txs: BTreeMap<TxId, DtrTx>,
}

impl DtrEngine {
    /// An engine with an empty database forest (DT0).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current database forest.
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// DT2: starts transaction `tx` with access set `ops` (entity →
    /// data operations to perform there). Joins/extends the forest as
    /// needed, precomputes the tree-locked plan, and returns a copy of it.
    pub fn begin(
        &mut self,
        tx: TxId,
        ops: &BTreeMap<EntityId, Vec<DataOp>>,
    ) -> Result<Vec<Step>, DtrViolation> {
        if self.txs.contains_key(&tx) {
            return Err(DtrViolation::AlreadyBegun(tx));
        }
        // Split the access set into entities already in the forest and new
        // ones; collect the distinct roots of the existing ones.
        let mut roots: Vec<EntityId> = Vec::new();
        let mut fresh: Vec<EntityId> = Vec::new();
        for &e in ops.keys() {
            match self.forest.root_of(e) {
                Some(r) => {
                    if !roots.contains(&r) {
                        roots.push(r);
                    }
                }
                None => fresh.push(e),
            }
        }
        // DT1: connect the fresh entities into a tree (a star rooted at the
        // first), then join everything under one root.
        let mut all_roots = roots;
        if let Some((&star_root, rest)) = fresh.split_first() {
            self.forest.add_root(star_root).expect("fresh");
            for &e in rest {
                self.forest.add_child(star_root, e).expect("fresh");
            }
            all_roots.push(star_root);
        }
        if let Some((&primary, others)) = all_roots.split_first() {
            for &r in others {
                self.forest.join(primary, r).expect("roots are distinct");
            }
        }
        let plan = tree_lock_plan(&self.forest, ops).map_err(DtrViolation::Plan)?;
        self.txs.insert(
            tx,
            DtrTx {
                plan: plan.clone(),
                cursor: 0,
                holding: BTreeSet::new(),
                locked_any: false,
            },
        );
        Ok(plan)
    }

    /// The next step `tx` will execute, if any.
    pub fn peek(&self, tx: TxId) -> Option<&Step> {
        self.txs.get(&tx).and_then(|st| st.plan.get(st.cursor))
    }

    /// Whether `tx`'s next step can run right now. Distinguishes lock
    /// conflicts (wait) from rule violations.
    pub fn check_step(&self, tx: TxId) -> Result<(), DtrViolation> {
        let st = self
            .txs
            .get(&tx)
            .ok_or(DtrViolation::UnknownTransaction(tx))?;
        let Some(step) = st.plan.get(st.cursor) else {
            return Err(DtrViolation::PlanExhausted(tx));
        };
        if let Operation::Lock(mode) = step.op {
            // Tree-locking: non-first locks need the parent held.
            if st.locked_any {
                let parent_held = self
                    .forest
                    .parent(step.entity)
                    .is_some_and(|p| st.holding.contains(&p));
                if !parent_held {
                    return Err(DtrViolation::ParentNotHeld(tx, step.entity));
                }
            }
            if let Some(holder) = self.table.conflicting_holder(tx, step.entity, mode) {
                return Err(DtrViolation::LockConflict(step.entity, holder));
            }
        }
        Ok(())
    }

    /// Executes `tx`'s next plan step and returns it.
    pub fn step(&mut self, tx: TxId) -> Result<Step, DtrViolation> {
        self.check_step(tx)?;
        let st = self.txs.get_mut(&tx).expect("checked");
        let step = st.plan[st.cursor];
        st.cursor += 1;
        match step.op {
            Operation::Lock(mode) => {
                st.locked_any = true;
                st.holding.insert(step.entity);
                self.table.grant(tx, step.entity, mode);
            }
            Operation::Unlock(mode) => {
                st.holding.remove(&step.entity);
                self.table.release(tx, step.entity, mode);
            }
            Operation::Data(_) => {}
        }
        Ok(step)
    }

    /// Runs `tx` to completion (only sensible when no other transaction
    /// holds conflicting locks); returns the executed steps.
    pub fn run_to_end(&mut self, tx: TxId) -> Result<Vec<Step>, DtrViolation> {
        let mut steps = Vec::new();
        while self
            .txs
            .get(&tx)
            .is_some_and(|st| st.cursor < st.plan.len())
        {
            steps.push(self.step(tx)?);
        }
        Ok(steps)
    }

    /// Whether `tx` has executed its whole plan.
    pub fn is_done(&self, tx: TxId) -> bool {
        self.txs
            .get(&tx)
            .is_some_and(|st| st.cursor == st.plan.len())
    }

    /// Finishes `tx`: releases any locks still held (normally none — the
    /// plan unlocks everything) and retires it.
    pub fn finish(&mut self, tx: TxId) -> Result<Vec<Step>, DtrViolation> {
        let st = self
            .txs
            .remove(&tx)
            .ok_or(DtrViolation::UnknownTransaction(tx))?;
        let mut steps = Vec::new();
        for e in st.holding {
            self.table.release(tx, e, LockMode::Exclusive);
            steps.push(Step::unlock_exclusive(e));
        }
        Ok(steps)
    }

    /// DT3: whether node `n` may be deleted from the database forest right
    /// now — not locked, and every active transaction's locked transaction
    /// remains tree-locked with respect to the reduced forest `G(n)`.
    pub fn check_delete(&self, n: EntityId) -> Result<(), DtrViolation> {
        if !self.forest.contains(n) {
            return Err(DtrViolation::NotInForest(n));
        }
        if self.table.is_locked(n) {
            return Err(DtrViolation::NodeLocked(n));
        }
        let mut reduced = self.forest.clone();
        reduced.remove(n).expect("checked present");
        for (&tx, st) in &self.txs {
            if is_tree_locked(&st.plan, &reduced).is_err() {
                return Err(DtrViolation::WouldBreakTreeLocking(tx));
            }
        }
        Ok(())
    }

    /// DT3: deletes node `n` from the database forest.
    pub fn delete(&mut self, n: EntityId) -> Result<(), DtrViolation> {
        self.check_delete(n)?;
        self.forest.remove(n).expect("checked");
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The unified policy API
// ---------------------------------------------------------------------

use crate::api::{AccessIntent, PolicyAction, PolicyEngine, PolicyResponse, PolicyViolation};

/// The [`PolicyAction`] realizing one plan [`Step`] (plans contain no
/// structural steps; data steps map to their read/write/insert/delete
/// actions).
fn action_of(step: &Step) -> PolicyAction {
    match step.op {
        Operation::Lock(_) => PolicyAction::Lock(step.entity),
        Operation::Unlock(_) => PolicyAction::Unlock(step.entity),
        Operation::Data(DataOp::Read) => PolicyAction::Read(step.entity),
        Operation::Data(DataOp::Write) => PolicyAction::Write(step.entity),
        Operation::Data(DataOp::Insert) => PolicyAction::InsertNode(step.entity),
        Operation::Data(DataOp::Delete) => PolicyAction::DeleteNode(step.entity),
    }
}

impl PolicyEngine for DtrEngine {
    fn name(&self) -> &'static str {
        "DTR"
    }

    /// DT2: joins/extends the forest for the declared access set and
    /// returns the precomputed tree-locked plan as actions — the caller
    /// drives [`PolicyEngine::request`] with exactly these, in order.
    fn begin(
        &mut self,
        tx: TxId,
        intent: &AccessIntent,
    ) -> Result<Option<Vec<PolicyAction>>, PolicyViolation> {
        let plan = DtrEngine::begin(self, tx, &intent.ops).map_err(PolicyViolation::Dtr)?;
        Ok(Some(plan.iter().map(action_of).collect()))
    }

    fn request(&mut self, tx: TxId, action: PolicyAction) -> PolicyResponse {
        match self.peek(tx) {
            Some(step) if action_of(step) == action => {}
            Some(_) => return PolicyResponse::Violation(PolicyViolation::OffPlan(tx, action)),
            None => {
                let v = if self.txs.contains_key(&tx) {
                    DtrViolation::PlanExhausted(tx)
                } else {
                    DtrViolation::UnknownTransaction(tx)
                };
                return PolicyResponse::Violation(PolicyViolation::Dtr(v));
            }
        }
        match self.check_step(tx) {
            Ok(()) => match self.step(tx) {
                Ok(step) => PolicyResponse::Granted(vec![step]),
                Err(v) => PolicyResponse::Violation(PolicyViolation::Dtr(v)),
            },
            Err(DtrViolation::LockConflict(entity, holder)) => {
                PolicyResponse::Conflict { entity, holder }
            }
            Err(v) => PolicyResponse::Violation(PolicyViolation::Dtr(v)),
        }
    }

    fn finish(&mut self, tx: TxId) -> Result<Vec<Step>, PolicyViolation> {
        DtrEngine::finish(self, tx).map_err(PolicyViolation::Dtr)
    }

    fn abort(&mut self, tx: TxId) -> Vec<Step> {
        DtrEngine::finish(self, tx).unwrap_or_default()
    }

    fn forest(&self) -> Option<&Forest> {
        Some(&self.forest)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TxId {
        TxId(i)
    }

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    fn access() -> Vec<DataOp> {
        vec![DataOp::Read, DataOp::Write]
    }

    /// Fig. 5 walkthrough: T1 starts on a fresh forest with A(T1) =
    /// {1, 2, 3} (DT0, DT2 — forest 5a); T2 arrives accessing {3, 4}: node
    /// 4 is added and joined (DT1, DT2 — forest 5b); once T2 finishes,
    /// node 4 can be deleted because T1 stays tree-locked w.r.t. G(4).
    #[test]
    fn fig5_walkthrough() {
        let mut eng = DtrEngine::new();
        assert!(eng.forest().is_empty()); // DT0
        let ops1 = BTreeMap::from([(e(1), access()), (e(2), access()), (e(3), access())]);
        let plan1 = eng.begin(t(1), &ops1).unwrap();
        assert!(!plan1.is_empty());
        assert_eq!(eng.forest().len(), 3);
        assert_eq!(eng.forest().roots().len(), 1);

        // T1 executes a little (locks its start node).
        eng.step(t(1)).unwrap();

        // T2 accesses {3, 4}: 4 is new -> added and joined under the root.
        let ops2 = BTreeMap::from([(e(3), access()), (e(4), access())]);
        let _plan2 = eng.begin(t(2), &ops2).unwrap();
        assert!(eng.forest().contains(e(4)));
        assert_eq!(eng.forest().roots().len(), 1, "one tree after joining");

        // While T2 exists, deleting 4 would break T2's tree-lockedness.
        assert!(matches!(
            eng.check_delete(e(4)),
            Err(DtrViolation::WouldBreakTreeLocking(_)) | Err(DtrViolation::NodeLocked(_))
        ));

        // Run T1 then T2 to completion (T1 first so locks don't collide).
        eng.run_to_end(t(1)).unwrap();
        eng.finish(t(1)).unwrap();
        eng.run_to_end(t(2)).unwrap();
        eng.finish(t(2)).unwrap();

        // Now node 4 can be deleted: no active transactions at all.
        assert!(eng.check_delete(e(4)).is_ok());
        eng.delete(e(4)).unwrap();
        assert!(!eng.forest().contains(e(4)));
    }

    #[test]
    fn plans_are_valid_locked_transactions() {
        let mut eng = DtrEngine::new();
        let ops = BTreeMap::from([(e(1), access()), (e(2), access())]);
        let plan = eng.begin(t(1), &ops).unwrap();
        let lt = slp_core::LockedTransaction::new(t(1), plan);
        assert!(lt.validate().is_ok());
        assert!(is_tree_locked(&lt.steps, eng.forest()).is_ok());
    }

    #[test]
    fn lock_conflicts_surface_for_waiting() {
        let mut eng = DtrEngine::new();
        let ops = BTreeMap::from([(e(1), access())]);
        eng.begin(t(1), &ops).unwrap();
        eng.step(t(1)).unwrap(); // T1 locks 1
        let ops2 = BTreeMap::from([(e(1), access())]);
        eng.begin(t(2), &ops2).unwrap();
        assert_eq!(
            eng.check_step(t(2)),
            Err(DtrViolation::LockConflict(e(1), t(1)))
        );
        // After T1 releases, T2 proceeds.
        eng.run_to_end(t(1)).unwrap();
        eng.finish(t(1)).unwrap();
        assert!(eng.run_to_end(t(2)).is_ok());
    }

    #[test]
    fn dt3_rejects_locked_nodes() {
        let mut eng = DtrEngine::new();
        let ops = BTreeMap::from([(e(1), access())]);
        eng.begin(t(1), &ops).unwrap();
        eng.step(t(1)).unwrap(); // lock 1
        assert_eq!(eng.check_delete(e(1)), Err(DtrViolation::NodeLocked(e(1))));
    }

    #[test]
    fn dt3_rejects_absent_nodes() {
        let eng = DtrEngine::new();
        assert_eq!(eng.check_delete(e(9)), Err(DtrViolation::NotInForest(e(9))));
    }

    #[test]
    fn joining_preserves_active_plans() {
        // T1 plans over tree {1, 2}; T2 arrives with {1, 9}: 9 is joined
        // under the existing root. T1's plan must still execute fine.
        let mut eng = DtrEngine::new();
        let ops1 = BTreeMap::from([(e(1), access()), (e(2), access())]);
        eng.begin(t(1), &ops1).unwrap();
        let ops2 = BTreeMap::from([(e(9), access())]);
        eng.begin(t(2), &ops2).unwrap();
        assert!(eng.run_to_end(t(1)).is_ok());
        eng.finish(t(1)).unwrap();
        assert!(eng.run_to_end(t(2)).is_ok());
        eng.finish(t(2)).unwrap();
    }

    #[test]
    fn two_separate_trees_joined_on_demand() {
        let mut eng = DtrEngine::new();
        // T1 creates tree {1}; T2 creates tree {2}; T3 spans both.
        eng.begin(t(1), &BTreeMap::from([(e(1), access())]))
            .unwrap();
        eng.run_to_end(t(1)).unwrap();
        eng.finish(t(1)).unwrap();
        eng.begin(t(2), &BTreeMap::from([(e(2), access())]))
            .unwrap();
        eng.run_to_end(t(2)).unwrap();
        eng.finish(t(2)).unwrap();
        assert_eq!(eng.forest().roots().len(), 2);
        eng.begin(t(3), &BTreeMap::from([(e(1), access()), (e(2), access())]))
            .unwrap();
        assert_eq!(eng.forest().roots().len(), 1, "DT1 joined the trees");
        assert!(eng.run_to_end(t(3)).is_ok());
        eng.finish(t(3)).unwrap();
    }

    #[test]
    fn begin_twice_fails() {
        let mut eng = DtrEngine::new();
        eng.begin(t(1), &BTreeMap::from([(e(1), access())]))
            .unwrap();
        assert_eq!(
            eng.begin(t(1), &BTreeMap::from([(e(2), access())])),
            Err(DtrViolation::AlreadyBegun(t(1)))
        );
    }

    #[test]
    fn plan_exhaustion_reported() {
        let mut eng = DtrEngine::new();
        eng.begin(t(1), &BTreeMap::from([(e(1), access())]))
            .unwrap();
        eng.run_to_end(t(1)).unwrap();
        assert!(eng.is_done(t(1)));
        assert_eq!(eng.check_step(t(1)), Err(DtrViolation::PlanExhausted(t(1))));
        assert_eq!(
            eng.step(t(1)).unwrap_err(),
            DtrViolation::PlanExhausted(t(1))
        );
    }
}
