//! The policy registry: names and factories for every locking policy.
//!
//! [`PolicyKind`] enumerates the policies the crate ships — the four safe
//! policies of the paper plus the mutant negative controls used by the E7
//! ablations — and [`PolicyRegistry`] builds any of them as a
//! `Box<dyn PolicyEngine>` from a kind or a name plus a [`PolicyConfig`].
//! Downstream code (the simulator, the experiments, the examples) selects
//! policies by kind instead of hand-wiring concrete engine constructors.
//!
//! The registry is extensible: [`PolicyRegistry::register`] installs a
//! custom named builder, so a prototype policy can be swapped into any
//! registry-driven harness without touching this crate.

use crate::altruistic::{AltruisticConfig, AltruisticEngine};
use crate::api::PolicyEngine;
use crate::ddag::{DdagConfig, DdagEngine};
use crate::dtr::DtrEngine;
use crate::two_phase::TwoPhaseEngine;
use slp_core::{EntityId, Universe};
use slp_graph::DiGraph;
use std::collections::BTreeMap;
use std::fmt;

/// Every locking policy the registry can build.
///
/// The mutant kinds disable one rule of their base policy and are **not
/// safe** — they exist so harnesses can demonstrate that each rule is
/// load-bearing (experiment E7 and the conformance suite's negative
/// controls).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PolicyKind {
    /// Strict two-phase locking over a flat entity pool (the baseline safe
    /// policy; condition 1 of Theorem 1).
    TwoPhase,
    /// Altruistic locking \[SGMS94\] (Section 5, rules AL1–AL3).
    Altruistic,
    /// Mutant: altruistic locking without the wake rule AL2. Unsafe.
    AltruisticNoWake,
    /// The dynamic DAG policy (Section 4, rules L1–L5).
    Ddag,
    /// Mutant: DDAG without L5's "presently holding a predecessor" clause.
    /// Unsafe.
    DdagNoHeldPredecessor,
    /// Mutant: DDAG without L5's "all predecessors locked in the past"
    /// clause. Unsafe.
    DdagNoAllPredecessors,
    /// The dynamic tree policy \[CM86\] (Section 6, rules DT0–DT3).
    Dtr,
}

impl PolicyKind {
    /// Every kind, safe policies first.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::TwoPhase,
        PolicyKind::Altruistic,
        PolicyKind::Ddag,
        PolicyKind::Dtr,
        PolicyKind::AltruisticNoWake,
        PolicyKind::DdagNoHeldPredecessor,
        PolicyKind::DdagNoAllPredecessors,
    ];

    /// The safe policies (every emitted trace is serializable).
    pub const SAFE: [PolicyKind; 4] = [
        PolicyKind::TwoPhase,
        PolicyKind::Altruistic,
        PolicyKind::Ddag,
        PolicyKind::Dtr,
    ];

    /// The mutant negative controls (one rule ablated each).
    pub const MUTANTS: [PolicyKind; 3] = [
        PolicyKind::AltruisticNoWake,
        PolicyKind::DdagNoHeldPredecessor,
        PolicyKind::DdagNoAllPredecessors,
    ];

    /// The registry name of the kind (also the engine's display name).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::TwoPhase => "2PL",
            PolicyKind::Altruistic => "altruistic",
            PolicyKind::AltruisticNoWake => "altruistic-no-wake",
            PolicyKind::Ddag => "DDAG",
            PolicyKind::DdagNoHeldPredecessor => "DDAG-no-held-pred",
            PolicyKind::DdagNoAllPredecessors => "DDAG-no-all-preds",
            PolicyKind::Dtr => "DTR",
        }
    }

    /// Parses a registry name (case-insensitive).
    pub fn from_name(name: &str) -> Option<PolicyKind> {
        PolicyKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// Whether every trace this policy admits is serializable.
    pub fn is_safe(self) -> bool {
        PolicyKind::SAFE.contains(&self)
    }

    /// Whether this is a rule-ablated negative control.
    pub fn is_mutant(self) -> bool {
        !self.is_safe()
    }

    /// The safe policy a mutant ablates (identity for safe kinds).
    pub fn base(self) -> PolicyKind {
        match self {
            PolicyKind::AltruisticNoWake => PolicyKind::Altruistic,
            PolicyKind::DdagNoHeldPredecessor | PolicyKind::DdagNoAllPredecessors => {
                PolicyKind::Ddag
            }
            safe => safe,
        }
    }

    /// Whether building this kind requires [`PolicyConfig::dag`].
    pub fn needs_graph(self) -> bool {
        matches!(
            self,
            PolicyKind::Ddag
                | PolicyKind::DdagNoHeldPredecessor
                | PolicyKind::DdagNoAllPredecessors
        )
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The shared world a policy engine is built over.
///
/// Flat-pool policies (2PL, altruistic, DTR) operate on [`pool`]; the DDAG
/// policies additionally need the initial rooted DAG in [`dag`].
///
/// [`pool`]: PolicyConfig::pool
/// [`dag`]: PolicyConfig::dag
#[derive(Clone, Debug, Default)]
pub struct PolicyConfig {
    /// The initially existing entities (flat-pool policies).
    pub pool: Vec<EntityId>,
    /// The initial rooted DAG and the universe naming its nodes (DDAG).
    pub dag: Option<(Universe, DiGraph)>,
}

impl PolicyConfig {
    /// A flat pool of initially existing entities.
    pub fn flat(pool: Vec<EntityId>) -> Self {
        PolicyConfig { pool, dag: None }
    }

    /// An initial rooted DAG (the caller is responsible for rootedness and
    /// acyclicity, checkable via [`DdagEngine::is_rooted_dag`]).
    pub fn dag(universe: Universe, graph: DiGraph) -> Self {
        PolicyConfig {
            pool: Vec::new(),
            dag: Some((universe, graph)),
        }
    }
}

/// Why the registry could not build an engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RegistryError {
    /// No builtin kind or custom builder has this name.
    UnknownPolicy(String),
    /// The kind needs an initial DAG but [`PolicyConfig::dag`] is `None`.
    NeedsGraph(PolicyKind),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownPolicy(name) => write!(f, "unknown policy {name:?}"),
            RegistryError::NeedsGraph(kind) => {
                write!(f, "policy {kind} needs an initial DAG in PolicyConfig::dag")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A custom engine factory installed via [`PolicyRegistry::register`].
pub type PolicyBuilder = Box<dyn Fn(&PolicyConfig) -> Result<Box<dyn PolicyEngine>, RegistryError>>;

/// Builds any registered policy — builtin [`PolicyKind`]s and custom named
/// builders — as a boxed [`PolicyEngine`].
#[derive(Default)]
pub struct PolicyRegistry {
    custom: BTreeMap<String, PolicyBuilder>,
}

impl PolicyRegistry {
    /// A registry with every builtin kind available.
    pub fn new() -> Self {
        Self::default()
    }

    /// The builtin kinds, safe policies first.
    pub fn kinds(&self) -> &'static [PolicyKind] {
        &PolicyKind::ALL
    }

    /// Every name the registry resolves: builtin kinds, then custom
    /// builders in name order.
    pub fn names(&self) -> Vec<String> {
        PolicyKind::ALL
            .iter()
            .map(|k| k.name().to_owned())
            .chain(self.custom.keys().cloned())
            .collect()
    }

    /// Installs (or replaces) a custom named builder.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        builder: impl Fn(&PolicyConfig) -> Result<Box<dyn PolicyEngine>, RegistryError> + 'static,
    ) {
        self.custom.insert(name.into(), Box::new(builder));
    }

    /// Builds an engine for a builtin kind.
    pub fn build(
        &self,
        kind: PolicyKind,
        config: &PolicyConfig,
    ) -> Result<Box<dyn PolicyEngine>, RegistryError> {
        let dag = |cfg: &PolicyConfig| cfg.dag.clone().ok_or(RegistryError::NeedsGraph(kind));
        Ok(match kind {
            PolicyKind::TwoPhase => Box::new(TwoPhaseEngine::new()),
            PolicyKind::Altruistic => Box::new(AltruisticEngine::new()),
            PolicyKind::AltruisticNoWake => Box::new(AltruisticEngine::with_config(
                AltruisticConfig::without_wake_rule(),
            )),
            PolicyKind::Ddag => {
                let (u, g) = dag(config)?;
                Box::new(DdagEngine::new(u, g))
            }
            PolicyKind::DdagNoHeldPredecessor => {
                let (u, g) = dag(config)?;
                Box::new(DdagEngine::with_config(
                    u,
                    g,
                    DdagConfig::without_held_predecessor_rule(),
                ))
            }
            PolicyKind::DdagNoAllPredecessors => {
                let (u, g) = dag(config)?;
                Box::new(DdagEngine::with_config(
                    u,
                    g,
                    DdagConfig::without_all_predecessors_rule(),
                ))
            }
            PolicyKind::Dtr => Box::new(DtrEngine::new()),
        })
    }

    /// Builds an engine by name: custom builders take precedence, then
    /// builtin kinds (case-insensitive).
    pub fn build_named(
        &self,
        name: &str,
        config: &PolicyConfig,
    ) -> Result<Box<dyn PolicyEngine>, RegistryError> {
        if let Some(builder) = self.custom.get(name) {
            return builder(config);
        }
        match PolicyKind::from_name(name) {
            Some(kind) => self.build(kind, config),
            None => Err(RegistryError::UnknownPolicy(name.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{AccessIntent, PolicyAction, PolicyResponse};
    use slp_core::TxId;

    fn diamond() -> (Universe, DiGraph) {
        let mut u = Universe::new();
        let ids = u.entities(["r", "a", "b", "j"]);
        let mut g = DiGraph::new();
        for &n in &ids {
            g.add_node(n).unwrap();
        }
        g.add_edge(ids[0], ids[1]).unwrap();
        g.add_edge(ids[0], ids[2]).unwrap();
        g.add_edge(ids[1], ids[3]).unwrap();
        g.add_edge(ids[2], ids[3]).unwrap();
        (u, g)
    }

    #[test]
    fn names_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_name(kind.name()), Some(kind));
            assert_eq!(
                PolicyKind::from_name(&kind.name().to_lowercase()),
                Some(kind)
            );
        }
        assert_eq!(PolicyKind::from_name("no-such-policy"), None);
    }

    #[test]
    fn safety_partition_is_exact() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.is_safe(), !kind.is_mutant());
            assert!(kind.base().is_safe());
        }
        assert_eq!(PolicyKind::SAFE.len() + PolicyKind::MUTANTS.len(), 7);
        assert_eq!(PolicyKind::AltruisticNoWake.base(), PolicyKind::Altruistic);
    }

    #[test]
    fn builds_every_kind_and_names_match() {
        let registry = PolicyRegistry::new();
        for kind in PolicyKind::ALL {
            let config = if kind.needs_graph() {
                let (u, g) = diamond();
                PolicyConfig::dag(u, g)
            } else {
                PolicyConfig::flat((0..4).map(EntityId).collect())
            };
            let engine = registry.build(kind, &config).unwrap();
            assert_eq!(engine.name(), kind.name(), "engine/kind name drift");
            let by_name = registry.build_named(kind.name(), &config).unwrap();
            assert_eq!(by_name.name(), kind.name());
        }
    }

    #[test]
    fn graphless_ddag_is_rejected() {
        let registry = PolicyRegistry::new();
        let err = registry
            .build(PolicyKind::Ddag, &PolicyConfig::flat(vec![]))
            .err()
            .unwrap();
        assert_eq!(err, RegistryError::NeedsGraph(PolicyKind::Ddag));
        assert!(err.to_string().contains("DDAG"));
    }

    #[test]
    fn unknown_names_are_rejected() {
        let registry = PolicyRegistry::new();
        let err = registry
            .build_named("3PL", &PolicyConfig::default())
            .err()
            .unwrap();
        assert!(matches!(err, RegistryError::UnknownPolicy(_)));
    }

    #[test]
    fn custom_builders_resolve_by_name() {
        let mut registry = PolicyRegistry::new();
        registry.register("my-2pl", |_config| Ok(Box::new(TwoPhaseEngine::new())));
        assert!(registry.names().contains(&"my-2pl".to_owned()));
        let mut engine = registry
            .build_named("my-2pl", &PolicyConfig::default())
            .unwrap();
        engine.begin(TxId(1), &AccessIntent::empty()).unwrap();
        let r = engine.request(TxId(1), PolicyAction::Lock(EntityId(0)));
        assert!(matches!(r, PolicyResponse::Granted(_)));
    }
}
