//! # slp-policies — locking policies for dynamic databases
//!
//! Implementations of the locking policies studied in *Safe Locking
//! Policies for Dynamic Databases* (Chaudhri & Hadzilacos), plus the
//! baselines they build on and mutant variants for ablation:
//!
//! | module | policy | paper section |
//! |--------|--------|---------------|
//! | [`two_phase`] | strict & conservative 2PL generators + validator | baseline (condition 1 of Theorem 1) |
//! | [`tree`] | tree-protocol planner & validator \[SK80\] | substrate for Section 6 |
//! | [`ddag`] | dynamic DAG policy engine (rules L1–L5) | Section 4 |
//! | [`altruistic`] | altruistic locking engine (rules AL1–AL3) \[SGMS94\] | Section 5 |
//! | [`dtr`] | dynamic tree policy engine (rules DT0–DT3) \[CM86\] | Section 6 |
//! | [`mutants`] | deliberately unsafe lockers (negative controls) | — |
//!
//! The three dynamic-policy engines share a common shape: they maintain
//! the shared structure (graph / wake sets / forest), enforce every rule
//! *online*, emit the [`slp_core::Step`]s realizing each action, and
//! distinguish **rule violations** (the transaction must abort) from
//! **lock conflicts** (the transaction may wait) so a scheduler can queue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod altruistic;
pub mod ddag;
pub mod dtr;
pub mod mutants;
pub mod tree;
pub mod two_phase;

pub use altruistic::{AltruisticConfig, AltruisticEngine, AltruisticViolation};
pub use ddag::{DdagConfig, DdagEngine, DdagViolation};
pub use dtr::{DtrEngine, DtrViolation};
pub use tree::{is_tree_locked, tree_lock_plan, PlanError, TreeLockViolation};
