//! # slp-policies — locking policies for dynamic databases
//!
//! Implementations of the locking policies studied in *Safe Locking
//! Policies for Dynamic Databases* (Chaudhri & Hadzilacos), plus the
//! baselines they build on and mutant variants for ablation:
//!
//! | module | policy | paper section |
//! |--------|--------|---------------|
//! | [`two_phase`] | strict & conservative 2PL generators + validator | baseline (condition 1 of Theorem 1) |
//! | [`tree`] | tree-protocol planner & validator \[SK80\] | substrate for Section 6 |
//! | [`ddag`] | dynamic DAG policy engine (rules L1–L5) | Section 4 |
//! | [`altruistic`] | altruistic locking engine (rules AL1–AL3) \[SGMS94\] | Section 5 |
//! | [`dtr`] | dynamic tree policy engine (rules DT0–DT3) \[CM86\] | Section 6 |
//! | [`mutants`] | deliberately unsafe lockers (negative controls) | — |
//!
//! The engines share one shape, made explicit by the [`api`] module: they
//! maintain the shared structure (graph / wake sets / forest), enforce
//! every rule *online*, emit the [`slp_core::Step`]s realizing each
//! action, and distinguish **rule violations** (the transaction must
//! abort) from **lock conflicts** (the transaction may wait) so a
//! scheduler can queue. Every engine implements the object-safe
//! [`PolicyEngine`] trait, and [`PolicyRegistry`] builds any of them —
//! mutants included — from a [`PolicyKind`] or a name:
//!
//! ```
//! use slp_policies::{AccessIntent, PolicyAction, PolicyConfig, PolicyKind, PolicyRegistry};
//! use slp_core::{EntityId, TxId};
//!
//! let registry = PolicyRegistry::new();
//! let config = PolicyConfig::flat((0..4).map(EntityId).collect());
//! let mut engine = registry.build(PolicyKind::TwoPhase, &config).unwrap();
//! engine.begin(TxId(1), &AccessIntent::empty()).unwrap();
//! let steps = engine
//!     .request(TxId(1), PolicyAction::Lock(EntityId(0)))
//!     .expect_granted();
//! assert_eq!(steps.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod altruistic;
pub mod api;
pub mod ddag;
pub mod dtr;
pub mod mutants;
pub mod registry;
pub mod tree;
pub mod two_phase;

pub use altruistic::{AltruisticConfig, AltruisticEngine, AltruisticViolation};
pub use api::{
    AccessIntent, GrantScope, PlanViolation, PolicyAction, PolicyEngine, PolicyResponse,
    PolicyViolation,
};
pub use ddag::{DdagConfig, DdagEngine, DdagViolation};
pub use dtr::{DtrEngine, DtrViolation};
pub use registry::{PolicyBuilder, PolicyConfig, PolicyKind, PolicyRegistry, RegistryError};
pub use tree::{is_tree_locked, tree_lock_plan, PlanError, TreeLockViolation};
pub use two_phase::TwoPhaseEngine;
