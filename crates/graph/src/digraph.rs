//! A mutable directed graph over entity ids.
//!
//! The DDAG policy's database is "a rooted DAG representation `G`" whose
//! nodes *and edges* are entities; transactions insert and delete both.
//! This type is the mutable structure the policy engines maintain; the
//! invariants (acyclicity, rootedness) are checked by the [`crate::dag`]
//! and [`crate::rooted`] modules rather than enforced here, because the
//! paper's transactions are themselves responsible for maintaining them.

use slp_core::EntityId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors from graph mutations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// The node already exists.
    NodeExists(EntityId),
    /// The node does not exist.
    NoSuchNode(EntityId),
    /// The edge already exists.
    EdgeExists(EntityId, EntityId),
    /// The edge does not exist.
    NoSuchEdge(EntityId, EntityId),
    /// Removing this node would orphan incident edges.
    NodeHasEdges(EntityId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeExists(n) => write!(f, "node {n} already exists"),
            GraphError::NoSuchNode(n) => write!(f, "node {n} does not exist"),
            GraphError::EdgeExists(a, b) => write!(f, "edge ({a}, {b}) already exists"),
            GraphError::NoSuchEdge(a, b) => write!(f, "edge ({a}, {b}) does not exist"),
            GraphError::NodeHasEdges(n) => write!(f, "node {n} still has incident edges"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed graph with deterministic iteration order (BTree-backed).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DiGraph {
    nodes: BTreeSet<EntityId>,
    succ: BTreeMap<EntityId, BTreeSet<EntityId>>,
    pred: BTreeMap<EntityId, BTreeSet<EntityId>>,
}

impl DiGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// A graph from node and edge lists.
    ///
    /// # Panics
    ///
    /// Panics if an edge references an undeclared node or duplicates occur.
    pub fn from_parts(
        nodes: impl IntoIterator<Item = EntityId>,
        edges: impl IntoIterator<Item = (EntityId, EntityId)>,
    ) -> Self {
        let mut g = Self::new();
        for n in nodes {
            g.add_node(n).expect("duplicate node");
        }
        for (a, b) in edges {
            g.add_edge(a, b).expect("bad edge");
        }
        g
    }

    /// Adds a node.
    pub fn add_node(&mut self, n: EntityId) -> Result<(), GraphError> {
        if !self.nodes.insert(n) {
            return Err(GraphError::NodeExists(n));
        }
        Ok(())
    }

    /// Removes a node; all incident edges must have been removed first.
    pub fn remove_node(&mut self, n: EntityId) -> Result<(), GraphError> {
        if !self.nodes.contains(&n) {
            return Err(GraphError::NoSuchNode(n));
        }
        let has_edges = self.succ.get(&n).is_some_and(|s| !s.is_empty())
            || self.pred.get(&n).is_some_and(|p| !p.is_empty());
        if has_edges {
            return Err(GraphError::NodeHasEdges(n));
        }
        self.nodes.remove(&n);
        self.succ.remove(&n);
        self.pred.remove(&n);
        Ok(())
    }

    /// Adds the edge `(a, b)`.
    pub fn add_edge(&mut self, a: EntityId, b: EntityId) -> Result<(), GraphError> {
        if !self.nodes.contains(&a) {
            return Err(GraphError::NoSuchNode(a));
        }
        if !self.nodes.contains(&b) {
            return Err(GraphError::NoSuchNode(b));
        }
        if !self.succ.entry(a).or_default().insert(b) {
            return Err(GraphError::EdgeExists(a, b));
        }
        self.pred.entry(b).or_default().insert(a);
        Ok(())
    }

    /// Removes the edge `(a, b)`.
    pub fn remove_edge(&mut self, a: EntityId, b: EntityId) -> Result<(), GraphError> {
        let present = self.succ.get_mut(&a).is_some_and(|s| s.remove(&b));
        if !present {
            return Err(GraphError::NoSuchEdge(a, b));
        }
        self.pred.get_mut(&b).expect("pred mirrors succ").remove(&a);
        Ok(())
    }

    /// Whether node `n` exists.
    pub fn has_node(&self, n: EntityId) -> bool {
        self.nodes.contains(&n)
    }

    /// Whether edge `(a, b)` exists.
    pub fn has_edge(&self, a: EntityId, b: EntityId) -> bool {
        self.succ.get(&a).is_some_and(|s| s.contains(&b))
    }

    /// The nodes, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.nodes.iter().copied()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All edges, in id order.
    pub fn edges(&self) -> impl Iterator<Item = (EntityId, EntityId)> + '_ {
        self.succ
            .iter()
            .flat_map(|(&a, succs)| succs.iter().map(move |&b| (a, b)))
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.values().map(BTreeSet::len).sum()
    }

    /// Successors of `n` (empty if absent).
    pub fn successors(&self, n: EntityId) -> impl Iterator<Item = EntityId> + '_ {
        self.succ
            .get(&n)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Predecessors of `n` (empty if absent).
    pub fn predecessors(&self, n: EntityId) -> impl Iterator<Item = EntityId> + '_ {
        self.pred
            .get(&n)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// In-degree of `n`.
    pub fn in_degree(&self, n: EntityId) -> usize {
        self.pred.get(&n).map_or(0, BTreeSet::len)
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: EntityId) -> usize {
        self.succ.get(&n).map_or(0, BTreeSet::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn add_and_query_nodes_and_edges() {
        let mut g = DiGraph::new();
        g.add_node(e(1)).unwrap();
        g.add_node(e(2)).unwrap();
        g.add_edge(e(1), e(2)).unwrap();
        assert!(g.has_node(e(1)));
        assert!(g.has_edge(e(1), e(2)));
        assert!(!g.has_edge(e(2), e(1)));
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.successors(e(1)).collect::<Vec<_>>(), vec![e(2)]);
        assert_eq!(g.predecessors(e(2)).collect::<Vec<_>>(), vec![e(1)]);
    }

    #[test]
    fn duplicate_nodes_and_edges_are_rejected() {
        let mut g = DiGraph::new();
        g.add_node(e(1)).unwrap();
        assert_eq!(g.add_node(e(1)), Err(GraphError::NodeExists(e(1))));
        g.add_node(e(2)).unwrap();
        g.add_edge(e(1), e(2)).unwrap();
        assert_eq!(
            g.add_edge(e(1), e(2)),
            Err(GraphError::EdgeExists(e(1), e(2)))
        );
    }

    #[test]
    fn edges_require_existing_endpoints() {
        let mut g = DiGraph::new();
        g.add_node(e(1)).unwrap();
        assert_eq!(g.add_edge(e(1), e(9)), Err(GraphError::NoSuchNode(e(9))));
        assert_eq!(g.add_edge(e(9), e(1)), Err(GraphError::NoSuchNode(e(9))));
    }

    #[test]
    fn node_removal_requires_no_incident_edges() {
        let mut g = DiGraph::from_parts([e(1), e(2)], [(e(1), e(2))]);
        assert_eq!(g.remove_node(e(1)), Err(GraphError::NodeHasEdges(e(1))));
        assert_eq!(g.remove_node(e(2)), Err(GraphError::NodeHasEdges(e(2))));
        g.remove_edge(e(1), e(2)).unwrap();
        assert!(g.remove_node(e(1)).is_ok());
        assert!(g.remove_node(e(2)).is_ok());
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn remove_missing_edge_errors() {
        let mut g = DiGraph::from_parts([e(1), e(2)], []);
        assert_eq!(
            g.remove_edge(e(1), e(2)),
            Err(GraphError::NoSuchEdge(e(1), e(2)))
        );
    }

    #[test]
    fn degrees() {
        let g = DiGraph::from_parts(
            [e(1), e(2), e(3)],
            [(e(1), e(2)), (e(1), e(3)), (e(2), e(3))],
        );
        assert_eq!(g.out_degree(e(1)), 2);
        assert_eq!(g.in_degree(e(3)), 2);
        assert_eq!(g.in_degree(e(1)), 0);
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn iteration_is_deterministic() {
        let g = DiGraph::from_parts([e(3), e(1), e(2)], [(e(3), e(1)), (e(2), e(1))]);
        assert_eq!(g.nodes().collect::<Vec<_>>(), vec![e(1), e(2), e(3)]);
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            vec![(e(2), e(1)), (e(3), e(1))]
        );
    }
}
