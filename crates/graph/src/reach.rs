//! Reachability queries: descendants, ancestors, and path existence.

use crate::digraph::DiGraph;
use slp_core::EntityId;
use std::collections::BTreeSet;

/// All nodes reachable from `start` by following edges forward, including
/// `start` itself (if present in the graph).
pub fn reachable_from(g: &DiGraph, start: EntityId) -> BTreeSet<EntityId> {
    let mut seen = BTreeSet::new();
    if !g.has_node(start) {
        return seen;
    }
    let mut stack = vec![start];
    while let Some(n) = stack.pop() {
        if seen.insert(n) {
            stack.extend(g.successors(n));
        }
    }
    seen
}

/// All descendants of `n` (nodes reachable via at least one edge).
pub fn descendants(g: &DiGraph, n: EntityId) -> BTreeSet<EntityId> {
    let mut d = reachable_from(g, n);
    d.remove(&n);
    d
}

/// All ancestors of `n` (nodes from which `n` is reachable via at least one
/// edge).
pub fn ancestors(g: &DiGraph, n: EntityId) -> BTreeSet<EntityId> {
    let mut seen = BTreeSet::new();
    if !g.has_node(n) {
        return seen;
    }
    let mut stack = vec![n];
    while let Some(m) = stack.pop() {
        if seen.insert(m) {
            stack.extend(g.predecessors(m));
        }
    }
    seen.remove(&n);
    seen
}

/// Whether there is a (possibly empty) path from `a` to `b`.
pub fn has_path(g: &DiGraph, a: EntityId, b: EntityId) -> bool {
    reachable_from(g, a).contains(&b)
}

/// Whether `a` is a *proper* ancestor of `b` (a ≠ b and a path exists).
pub fn is_proper_ancestor(g: &DiGraph, a: EntityId, b: EntityId) -> bool {
    a != b && has_path(g, a, b)
}

/// Whether `a` and `b` are comparable (one reaches the other).
pub fn comparable(g: &DiGraph, a: EntityId, b: EntityId) -> bool {
    has_path(g, a, b) || has_path(g, b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    /// Diamond: 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 4.
    fn diamond() -> DiGraph {
        DiGraph::from_parts(
            [e(1), e(2), e(3), e(4)],
            [(e(1), e(2)), (e(1), e(3)), (e(2), e(4)), (e(3), e(4))],
        )
    }

    #[test]
    fn reachability_includes_start() {
        let g = diamond();
        let r = reachable_from(&g, e(2));
        assert_eq!(r, BTreeSet::from([e(2), e(4)]));
    }

    #[test]
    fn descendants_excludes_self() {
        let g = diamond();
        assert_eq!(descendants(&g, e(1)), BTreeSet::from([e(2), e(3), e(4)]));
        assert_eq!(descendants(&g, e(4)), BTreeSet::new());
    }

    #[test]
    fn ancestors_excludes_self() {
        let g = diamond();
        assert_eq!(ancestors(&g, e(4)), BTreeSet::from([e(1), e(2), e(3)]));
        assert_eq!(ancestors(&g, e(1)), BTreeSet::new());
    }

    #[test]
    fn paths_and_comparability() {
        let g = diamond();
        assert!(has_path(&g, e(1), e(4)));
        assert!(has_path(&g, e(1), e(1)));
        assert!(!has_path(&g, e(2), e(3)));
        assert!(is_proper_ancestor(&g, e(1), e(4)));
        assert!(!is_proper_ancestor(&g, e(1), e(1)));
        assert!(comparable(&g, e(4), e(1)));
        assert!(!comparable(&g, e(2), e(3)));
    }

    #[test]
    fn absent_nodes_reach_nothing() {
        let g = diamond();
        assert!(reachable_from(&g, e(9)).is_empty());
        assert!(ancestors(&g, e(9)).is_empty());
        assert!(!has_path(&g, e(9), e(1)));
    }
}
