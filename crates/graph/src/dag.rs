//! Acyclicity checks and topological sorting for [`DiGraph`]s.

use crate::digraph::DiGraph;
use slp_core::EntityId;
use std::collections::BTreeMap;

/// Whether the graph is acyclic.
pub fn is_acyclic(g: &DiGraph) -> bool {
    topological_sort(g).is_some()
}

/// A topological sort of the nodes (smallest-id-first among ready nodes),
/// or `None` if the graph has a cycle.
pub fn topological_sort(g: &DiGraph) -> Option<Vec<EntityId>> {
    let mut indegree: BTreeMap<EntityId, usize> = g.nodes().map(|n| (n, g.in_degree(n))).collect();
    let mut ready: Vec<EntityId> = indegree
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    let mut order = Vec::with_capacity(g.node_count());
    while let Some(n) = ready.pop() {
        order.push(n);
        for m in g.successors(n) {
            let d = indegree.get_mut(&m).expect("successor is a node");
            *d -= 1;
            if *d == 0 {
                ready.push(m);
            }
        }
    }
    (order.len() == g.node_count()).then_some(order)
}

/// Whether adding the edge `(a, b)` would create a cycle (i.e. `b` already
/// reaches `a`). `a == b` always creates a (self-)cycle.
pub fn would_create_cycle(g: &DiGraph, a: EntityId, b: EntityId) -> bool {
    a == b || crate::reach::has_path(g, b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn dag_is_acyclic_and_sorts() {
        let g = DiGraph::from_parts(
            [e(1), e(2), e(3)],
            [(e(1), e(2)), (e(2), e(3)), (e(1), e(3))],
        );
        assert!(is_acyclic(&g));
        let order = topological_sort(&g).unwrap();
        let pos = |n: EntityId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(e(1)) < pos(e(2)));
        assert!(pos(e(2)) < pos(e(3)));
    }

    #[test]
    fn cycle_is_detected() {
        let g = DiGraph::from_parts([e(1), e(2)], [(e(1), e(2)), (e(2), e(1))]);
        assert!(!is_acyclic(&g));
        assert_eq!(topological_sort(&g), None);
    }

    #[test]
    fn would_create_cycle_checks() {
        let g = DiGraph::from_parts([e(1), e(2), e(3)], [(e(1), e(2)), (e(2), e(3))]);
        assert!(would_create_cycle(&g, e(3), e(1)));
        assert!(would_create_cycle(&g, e(1), e(1)));
        assert!(!would_create_cycle(&g, e(1), e(3)));
        assert!(would_create_cycle(&g, e(3), e(2)));
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g = DiGraph::new();
        assert!(is_acyclic(&g));
        assert_eq!(topological_sort(&g), Some(vec![]));
    }
}
