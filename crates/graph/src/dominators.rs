//! Dominators (Section 4).
//!
//! "A *dominator* `D` of a set of nodes `W` is a node such that every path
//! from the root to a node in `W` passes through `D`. Thus, in a rooted
//! graph, the root dominates all the nodes in the graph including itself."
//!
//! Lemma 3(a) — the key structural property of DDAG-locked transactions —
//! says every entity locked by a transaction is dominated (in the graph as
//! of the transaction's start) by the first entity it locked. The safety
//! proof, the policy validator, and the property tests all consult this
//! module.

use crate::digraph::DiGraph;
use slp_core::EntityId;
use std::collections::{BTreeMap, BTreeSet};

/// The dominator sets of every node reachable from `root`: `dom(n)` is the
/// set of nodes through which *every* path from `root` to `n` passes
/// (including `n` and `root` themselves).
///
/// Classic iterative dataflow: `dom(root) = {root}`,
/// `dom(n) = {n} ∪ ⋂_{p ∈ preds(n)} dom(p)`, iterated to fixpoint.
pub fn dominator_sets(g: &DiGraph, root: EntityId) -> BTreeMap<EntityId, BTreeSet<EntityId>> {
    let reachable = crate::reach::reachable_from(g, root);
    let mut dom: BTreeMap<EntityId, BTreeSet<EntityId>> = BTreeMap::new();
    if reachable.is_empty() {
        return dom;
    }
    let all: BTreeSet<EntityId> = reachable.iter().copied().collect();
    for &n in &reachable {
        if n == root {
            dom.insert(n, BTreeSet::from([root]));
        } else {
            dom.insert(n, all.clone());
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &n in &reachable {
            if n == root {
                continue;
            }
            let mut new: Option<BTreeSet<EntityId>> = None;
            for p in g.predecessors(n) {
                if !reachable.contains(&p) {
                    continue;
                }
                let pd = &dom[&p];
                new = Some(match new {
                    None => pd.clone(),
                    Some(acc) => acc.intersection(pd).copied().collect(),
                });
            }
            let mut new = new.unwrap_or_default();
            new.insert(n);
            if dom[&n] != new {
                dom.insert(n, new);
                changed = true;
            }
        }
    }
    dom
}

/// Whether `d` dominates node `w` with respect to `root`: every path from
/// `root` to `w` passes through `d`. If `w` is unreachable from `root`
/// there are no such paths and the condition holds vacuously — callers in
/// the DDAG policy only ask about reachable nodes of a rooted graph.
pub fn dominates(g: &DiGraph, root: EntityId, d: EntityId, w: EntityId) -> bool {
    let sets = dominator_sets(g, root);
    match sets.get(&w) {
        Some(set) => set.contains(&d),
        None => true, // unreachable: vacuous
    }
}

/// Whether `d` dominates *every* node in `ws`.
pub fn dominates_all<'a>(
    g: &DiGraph,
    root: EntityId,
    d: EntityId,
    ws: impl IntoIterator<Item = &'a EntityId>,
) -> bool {
    let sets = dominator_sets(g, root);
    ws.into_iter().all(|w| match sets.get(w) {
        Some(set) => set.contains(&d),
        None => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    /// Diamond: 1 -> {2, 3} -> 4, plus 4 -> 5.
    fn diamond_tail() -> DiGraph {
        DiGraph::from_parts(
            [e(1), e(2), e(3), e(4), e(5)],
            [
                (e(1), e(2)),
                (e(1), e(3)),
                (e(2), e(4)),
                (e(3), e(4)),
                (e(4), e(5)),
            ],
        )
    }

    #[test]
    fn root_dominates_everything_including_itself() {
        let g = diamond_tail();
        for n in [1, 2, 3, 4, 5] {
            assert!(dominates(&g, e(1), e(1), e(n)), "root should dominate e{n}");
        }
    }

    #[test]
    fn every_node_dominates_itself() {
        let g = diamond_tail();
        for n in [1, 2, 3, 4, 5] {
            assert!(dominates(&g, e(1), e(n), e(n)));
        }
    }

    #[test]
    fn diamond_arms_do_not_dominate_join() {
        let g = diamond_tail();
        assert!(!dominates(&g, e(1), e(2), e(4)));
        assert!(!dominates(&g, e(1), e(3), e(4)));
        // But the join dominates the tail.
        assert!(dominates(&g, e(1), e(4), e(5)));
    }

    #[test]
    fn dominator_sets_match_hand_computation() {
        let g = diamond_tail();
        let dom = dominator_sets(&g, e(1));
        assert_eq!(dom[&e(4)], BTreeSet::from([e(1), e(4)]));
        assert_eq!(dom[&e(5)], BTreeSet::from([e(1), e(4), e(5)]));
        assert_eq!(dom[&e(2)], BTreeSet::from([e(1), e(2)]));
    }

    #[test]
    fn dominates_all_over_a_set() {
        let g = diamond_tail();
        let ws = [e(4), e(5)];
        assert!(dominates_all(&g, e(1), e(4), ws.iter()));
        assert!(!dominates_all(&g, e(1), e(2), ws.iter()));
    }

    #[test]
    fn chain_dominators() {
        let g = DiGraph::from_parts([e(1), e(2), e(3)], [(e(1), e(2)), (e(2), e(3))]);
        assert!(dominates(&g, e(1), e(2), e(3)));
        assert!(!dominates(&g, e(1), e(3), e(2)));
    }

    #[test]
    fn unreachable_node_is_vacuously_dominated() {
        let g = DiGraph::from_parts([e(1), e(2), e(9)], [(e(1), e(2))]);
        assert!(dominates(&g, e(1), e(2), e(9)));
    }

    /// Brute-force check on a small fixed graph: enumerate all simple paths
    /// from the root and verify the dataflow answer agrees with the
    /// path-based definition.
    #[test]
    fn dataflow_agrees_with_path_enumeration() {
        let g = DiGraph::from_parts(
            [e(0), e(1), e(2), e(3), e(4)],
            [
                (e(0), e(1)),
                (e(0), e(2)),
                (e(1), e(3)),
                (e(2), e(3)),
                (e(1), e(4)),
                (e(3), e(4)),
            ],
        );
        fn all_paths(
            g: &DiGraph,
            from: EntityId,
            to: EntityId,
            path: &mut Vec<EntityId>,
            out: &mut Vec<Vec<EntityId>>,
        ) {
            path.push(from);
            if from == to {
                out.push(path.clone());
            } else {
                for s in g.successors(from) {
                    if !path.contains(&s) {
                        all_paths(g, s, to, path, out);
                    }
                }
            }
            path.pop();
        }
        let dom = dominator_sets(&g, e(0));
        for w in g.nodes() {
            let mut paths = Vec::new();
            all_paths(&g, e(0), w, &mut Vec::new(), &mut paths);
            for d in g.nodes() {
                let by_paths = !paths.is_empty() && paths.iter().all(|p| p.contains(&d));
                let by_dataflow = dom[&w].contains(&d);
                assert_eq!(by_paths, by_dataflow, "dominates({d}, {w}) mismatch");
            }
        }
    }
}
