//! # slp-graph — graph substrate for dynamic locking policies
//!
//! The DDAG policy (Section 4) runs over *dynamic rooted DAGs* whose nodes
//! and edges are database entities; the dynamic tree policy (Section 6)
//! maintains a *database forest*. This crate provides both structures and
//! the queries the policies and their correctness arguments need:
//!
//! * [`DiGraph`] — mutable digraph with deterministic iteration;
//! * [`dag`] — acyclicity, topological sort, cycle-prevention checks;
//! * [`reach`] — ancestors/descendants/path queries;
//! * [`rooted`] — the paper's rootedness definition (unique root reaching
//!   every node);
//! * [`dominators`] — dominator sets ("every path from the root to `w`
//!   passes through `d`"), the engine of Lemma 3;
//! * [`Forest`] — parent-pointer forests with the DTR policy's `join` and
//!   `remove` mutations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod digraph;
pub mod dominators;
pub mod forest;
pub mod reach;
pub mod rooted;

pub use digraph::{DiGraph, GraphError};
pub use forest::{Forest, ForestError};
