//! Forests of rooted trees — the *database forest* the dynamic tree (DTR)
//! policy maintains (Section 6).
//!
//! The DTR policy's concurrency-control algorithm owns this structure:
//! * DT1 — two trees are joined by drawing an edge from the root of `g1`
//!   to the root of `g2`; new entities are connected into a tree and then
//!   joined on;
//! * DT3 — a node may be deleted from the forest (its children become
//!   roots of their own trees).

use slp_core::EntityId;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from forest mutations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ForestError {
    /// The node already exists in the forest.
    NodeExists(EntityId),
    /// The node does not exist in the forest.
    NoSuchNode(EntityId),
    /// The node is not a root (join requires roots).
    NotARoot(EntityId),
    /// Joining a tree to itself.
    SameTree(EntityId),
}

impl fmt::Display for ForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForestError::NodeExists(n) => write!(f, "node {n} already in the forest"),
            ForestError::NoSuchNode(n) => write!(f, "node {n} not in the forest"),
            ForestError::NotARoot(n) => write!(f, "node {n} is not a root"),
            ForestError::SameTree(n) => write!(f, "cannot join a tree (rooted at {n}) to itself"),
        }
    }
}

impl std::error::Error for ForestError {}

/// A forest of rooted trees with parent pointers.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Forest {
    /// `None` parent means the node is a root.
    parent: BTreeMap<EntityId, Option<EntityId>>,
}

impl Forest {
    /// An empty forest (rule DT0: initially the database forest is empty).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node as the root of a new single-node tree.
    pub fn add_root(&mut self, n: EntityId) -> Result<(), ForestError> {
        if self.parent.contains_key(&n) {
            return Err(ForestError::NodeExists(n));
        }
        self.parent.insert(n, None);
        Ok(())
    }

    /// Adds a new node as a child of an existing node.
    pub fn add_child(&mut self, parent: EntityId, n: EntityId) -> Result<(), ForestError> {
        if !self.parent.contains_key(&parent) {
            return Err(ForestError::NoSuchNode(parent));
        }
        if self.parent.contains_key(&n) {
            return Err(ForestError::NodeExists(n));
        }
        self.parent.insert(n, Some(parent));
        Ok(())
    }

    /// DT1: joins the tree rooted at `r2` under the tree rooted at `r1` by
    /// drawing the edge `(r1, r2)`. Both arguments must be roots of
    /// distinct trees. (`r1` need not be a root in the general statement,
    /// but DT1 draws the edge *from the root of g1*, so we require it.)
    pub fn join(&mut self, r1: EntityId, r2: EntityId) -> Result<(), ForestError> {
        match self.parent.get(&r1) {
            None => return Err(ForestError::NoSuchNode(r1)),
            Some(Some(_)) => return Err(ForestError::NotARoot(r1)),
            Some(None) => {}
        }
        match self.parent.get(&r2) {
            None => return Err(ForestError::NoSuchNode(r2)),
            Some(Some(_)) => return Err(ForestError::NotARoot(r2)),
            Some(None) => {}
        }
        if r1 == r2 {
            return Err(ForestError::SameTree(r1));
        }
        self.parent.insert(r2, Some(r1));
        Ok(())
    }

    /// DT3's mutation: removes `n` from the forest; `n`'s children become
    /// roots. (Whether the removal is *allowed* — no active transaction
    /// loses tree-lockedness — is the policy engine's check, not the
    /// forest's.)
    pub fn remove(&mut self, n: EntityId) -> Result<(), ForestError> {
        if !self.parent.contains_key(&n) {
            return Err(ForestError::NoSuchNode(n));
        }
        let children: Vec<EntityId> = self.children(n).collect();
        for c in children {
            self.parent.insert(c, None);
        }
        self.parent.remove(&n);
        Ok(())
    }

    /// Whether `n` is in the forest.
    pub fn contains(&self, n: EntityId) -> bool {
        self.parent.contains_key(&n)
    }

    /// The parent of `n` (`None` if `n` is a root or absent).
    pub fn parent(&self, n: EntityId) -> Option<EntityId> {
        self.parent.get(&n).copied().flatten()
    }

    /// The children of `n`, in id order.
    pub fn children(&self, n: EntityId) -> impl Iterator<Item = EntityId> + '_ {
        self.parent
            .iter()
            .filter(move |&(_, &p)| p == Some(n))
            .map(|(&c, _)| c)
    }

    /// The root of the tree containing `n`.
    pub fn root_of(&self, n: EntityId) -> Option<EntityId> {
        if !self.parent.contains_key(&n) {
            return None;
        }
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            cur = p;
        }
        Some(cur)
    }

    /// All roots, in id order.
    pub fn roots(&self) -> Vec<EntityId> {
        self.parent
            .iter()
            .filter(|&(_, &p)| p.is_none())
            .map(|(&n, _)| n)
            .collect()
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.parent.keys().copied()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The path from the root of `n`'s tree down to `n`, inclusive.
    pub fn path_from_root(&self, n: EntityId) -> Option<Vec<EntityId>> {
        if !self.parent.contains_key(&n) {
            return None;
        }
        let mut path = vec![n];
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Whether `a` is an ancestor of `b` (including `a == b`).
    pub fn is_ancestor(&self, a: EntityId, b: EntityId) -> bool {
        if !self.parent.contains_key(&a) || !self.parent.contains_key(&b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.parent(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// All nodes of the tree rooted at (or containing) `n`'s root.
    pub fn tree_nodes(&self, n: EntityId) -> Vec<EntityId> {
        match self.root_of(n) {
            None => Vec::new(),
            Some(r) => self
                .parent
                .keys()
                .copied()
                .filter(|&m| self.root_of(m) == Some(r))
                .collect(),
        }
    }

    /// The lowest common ancestor of `a` and `b`, if they share a tree.
    pub fn lca(&self, a: EntityId, b: EntityId) -> Option<EntityId> {
        let pa = self.path_from_root(a)?;
        let pb = self.path_from_root(b)?;
        let mut last = None;
        for (x, y) in pa.iter().zip(pb.iter()) {
            if x == y {
                last = Some(*x);
            } else {
                break;
            }
        }
        last
    }

    /// Descendants of `n` including `n` itself.
    pub fn subtree(&self, n: EntityId) -> Vec<EntityId> {
        if !self.parent.contains_key(&n) {
            return Vec::new();
        }
        self.parent
            .keys()
            .copied()
            .filter(|&m| self.is_ancestor(n, m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    /// Builds the Fig. 5-like forest: tree 1 -> {2, 3}, with 3 -> 5.
    fn sample() -> Forest {
        let mut f = Forest::new();
        f.add_root(e(1)).unwrap();
        f.add_child(e(1), e(2)).unwrap();
        f.add_child(e(1), e(3)).unwrap();
        f.add_child(e(3), e(5)).unwrap();
        f
    }

    #[test]
    fn build_and_query() {
        let f = sample();
        assert_eq!(f.parent(e(2)), Some(e(1)));
        assert_eq!(f.parent(e(1)), None);
        assert_eq!(f.children(e(1)).collect::<Vec<_>>(), vec![e(2), e(3)]);
        assert_eq!(f.root_of(e(5)), Some(e(1)));
        assert_eq!(f.roots(), vec![e(1)]);
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn join_attaches_root_under_root() {
        let mut f = sample();
        f.add_root(e(4)).unwrap();
        assert_eq!(f.roots(), vec![e(1), e(4)]);
        f.join(e(1), e(4)).unwrap();
        assert_eq!(f.parent(e(4)), Some(e(1)));
        assert_eq!(f.roots(), vec![e(1)]);
    }

    #[test]
    fn join_requires_roots_and_distinct_trees() {
        let mut f = sample();
        f.add_root(e(4)).unwrap();
        assert_eq!(f.join(e(2), e(4)), Err(ForestError::NotARoot(e(2))));
        assert_eq!(f.join(e(1), e(5)), Err(ForestError::NotARoot(e(5))));
        assert_eq!(f.join(e(1), e(1)), Err(ForestError::SameTree(e(1))));
        assert_eq!(f.join(e(9), e(4)), Err(ForestError::NoSuchNode(e(9))));
    }

    #[test]
    fn remove_promotes_children_to_roots() {
        let mut f = sample();
        f.remove(e(3)).unwrap();
        assert!(!f.contains(e(3)));
        assert_eq!(f.parent(e(5)), None);
        assert_eq!(f.roots(), vec![e(1), e(5)]);
        assert_eq!(f.remove(e(3)), Err(ForestError::NoSuchNode(e(3))));
    }

    #[test]
    fn paths_ancestors_and_lca() {
        let f = sample();
        assert_eq!(f.path_from_root(e(5)), Some(vec![e(1), e(3), e(5)]));
        assert!(f.is_ancestor(e(1), e(5)));
        assert!(f.is_ancestor(e(3), e(5)));
        assert!(f.is_ancestor(e(5), e(5)));
        assert!(!f.is_ancestor(e(2), e(5)));
        assert_eq!(f.lca(e(2), e(5)), Some(e(1)));
        assert_eq!(f.lca(e(5), e(3)), Some(e(3)));
    }

    #[test]
    fn lca_across_trees_is_none() {
        let mut f = sample();
        f.add_root(e(4)).unwrap();
        assert_eq!(f.lca(e(2), e(4)), None);
    }

    #[test]
    fn subtree_and_tree_nodes() {
        let f = sample();
        assert_eq!(f.subtree(e(3)), vec![e(3), e(5)]);
        assert_eq!(f.tree_nodes(e(5)), vec![e(1), e(2), e(3), e(5)]);
    }

    #[test]
    fn duplicate_nodes_rejected() {
        let mut f = sample();
        assert_eq!(f.add_root(e(1)), Err(ForestError::NodeExists(e(1))));
        assert_eq!(f.add_child(e(1), e(2)), Err(ForestError::NodeExists(e(2))));
        assert_eq!(f.add_child(e(9), e(10)), Err(ForestError::NoSuchNode(e(9))));
    }
}
