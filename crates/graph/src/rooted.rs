//! Rooted graphs (Section 4).
//!
//! "A *root* of a directed graph is a node with no predecessors. A directed
//! graph is *rooted* if it has a unique root and there is a path from the
//! root to every node in the graph."

use crate::digraph::DiGraph;
use crate::reach::reachable_from;
use slp_core::EntityId;

/// All roots (nodes with no predecessors), in id order.
pub fn roots(g: &DiGraph) -> Vec<EntityId> {
    g.nodes().filter(|&n| g.in_degree(n) == 0).collect()
}

/// The unique root if the graph is rooted, else `None`.
pub fn root(g: &DiGraph) -> Option<EntityId> {
    match roots(g).as_slice() {
        [r] => {
            let reach = reachable_from(g, *r);
            (reach.len() == g.node_count()).then_some(*r)
        }
        _ => None,
    }
}

/// Whether the graph is rooted: unique root reaching every node.
pub fn is_rooted(g: &DiGraph) -> bool {
    root(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn fig3_graph_is_rooted() {
        // The paper's Fig. 3 example DAG: 1 -> 2, 2 -> 3, 2 -> 4 (+ node 5
        // reachable from 1 to keep it interesting).
        let g = DiGraph::from_parts(
            [e(1), e(2), e(3), e(4)],
            [(e(1), e(2)), (e(2), e(3)), (e(2), e(4))],
        );
        assert_eq!(roots(&g), vec![e(1)]);
        assert_eq!(root(&g), Some(e(1)));
        assert!(is_rooted(&g));
    }

    #[test]
    fn two_roots_is_not_rooted() {
        let g = DiGraph::from_parts([e(1), e(2), e(3)], [(e(1), e(3)), (e(2), e(3))]);
        assert_eq!(roots(&g), vec![e(1), e(2)]);
        assert!(!is_rooted(&g));
        assert_eq!(root(&g), None);
    }

    #[test]
    fn unreachable_node_breaks_rootedness() {
        // 1 -> 2 and an isolated cycle 3 <-> 4 (no roots there, but nodes
        // unreachable from 1).
        let g = DiGraph::from_parts(
            [e(1), e(2), e(3), e(4)],
            [(e(1), e(2)), (e(3), e(4)), (e(4), e(3))],
        );
        assert_eq!(roots(&g), vec![e(1)]);
        assert!(!is_rooted(&g));
    }

    #[test]
    fn singleton_graph_is_rooted() {
        let g = DiGraph::from_parts([e(7)], []);
        assert!(is_rooted(&g));
        assert_eq!(root(&g), Some(e(7)));
    }

    #[test]
    fn empty_graph_is_not_rooted() {
        assert!(!is_rooted(&DiGraph::new()));
    }
}
