//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal property-testing harness that is source-compatible with the
//! repo's `proptest!` test suites: strategies ([`strategy::Strategy`],
//! [`strategy::Just`], ranges, tuples, `prop_map`, [`prop_oneof!`]),
//! collection strategies ([`collection::vec`], [`collection::hash_set`],
//! [`collection::btree_set`]), [`arbitrary::any`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//!
//! * **no shrinking** — a failing case reports its seed and inputs via the
//!   panic message, but is not minimized;
//! * **deterministic RNG** — each test derives its RNG stream from the
//!   test's name, so runs are reproducible without a persistence file;
//! * `prop_assert!` panics instead of returning `Err`, which is
//!   indistinguishable at the call sites used here.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test execution: configuration and the deterministic RNG.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 96 keeps the repo's heavier
            // model-checking properties inside a sane `cargo test` budget.
            ProptestConfig { cases: 96 }
        }
    }

    /// Deterministic SplitMix64 stream, seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }

        /// A uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives (built by [`crate::prop_oneof!`]).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union of the given alternatives (must be nonempty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }

    /// Strategy for [`crate::arbitrary::any`].
    pub struct ArbitraryStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for ArbitraryStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use crate::strategy::ArbitraryStrategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `T` over its whole domain.
    pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
        ArbitraryStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeSet, HashSet};
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// A size specification: a range of allowed collection sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange(*r.start()..r.end() + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.0.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with target size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A hash set of values from `element` with size in `size` (best effort:
    /// duplicates are retried a bounded number of times, as in proptest).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.0.clone().generate(rng);
            fill(
                n,
                rng,
                HashSet::new(),
                &self.element,
                HashSet::insert,
                HashSet::len,
            )
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A B-tree set of values from `element` with size in `size`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.0.clone().generate(rng);
            fill(
                n,
                rng,
                BTreeSet::new(),
                &self.element,
                BTreeSet::insert,
                BTreeSet::len,
            )
        }
    }

    /// Inserts until the target size is reached or the retry budget (as in
    /// real proptest, duplicates are allowed to shrink the result) runs out.
    fn fill<C, S: Strategy>(
        target: usize,
        rng: &mut TestRng,
        mut out: C,
        element: &S,
        insert: impl Fn(&mut C, S::Value) -> bool,
        len: impl Fn(&C) -> usize,
    ) -> C {
        let mut attempts = 0usize;
        while len(&out) < target && attempts < target * 10 + 100 {
            insert(&mut out, element.generate(rng));
            attempts += 1;
        }
        out
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! `prop::collection::...` paths.
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a property (panics with context in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[doc = $doc:expr])*
     #[test]
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let __strategies = ($($strategy,)+);
            for __case in 0..__config.cases {
                let __case: u32 = __case;
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_domain() {
        let mut rng = crate::test_runner::TestRng::deterministic("domain");
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
        let u = prop_oneof![Just(1u8), Just(2u8)];
        for _ in 0..50 {
            assert!(matches!(u.generate(&mut rng), 1 | 2));
        }
        let vs = prop::collection::vec(0u32..5, 2..4);
        for _ in 0..50 {
            let v = vs.generate(&mut rng);
            assert!((2..4).contains(&v.len()));
        }
        let hs = prop::collection::hash_set(0u32..100, 3..6);
        for _ in 0..20 {
            let h = hs.generate(&mut rng);
            assert!((3..6).contains(&h.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0u32..100, (a, b) in (any::<bool>(), 1usize..=3)) {
            prop_assert!(x < 100);
            prop_assert!(usize::from(a) <= 1);
            prop_assert!((1..=3).contains(&b));
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(v in prop::collection::vec(any::<u64>(), 0..10)) {
            prop_assert!(v.len() < 10);
        }
    }
}
