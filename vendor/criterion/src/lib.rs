//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment cannot fetch crates.io, so the workspace vendors
//! a small wall-clock benchmark harness that is source-compatible with the
//! repo's benches: [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Compared to real criterion there is no statistical analysis, outlier
//! rejection, or HTML report — each benchmark is warmed up, run for a
//! fixed wall-clock budget, and reported as mean ns/iter (plus iters/sec)
//! on stdout in a stable `group/id: ...` format that downstream tooling
//! (the repo's `BENCH_*.json` trajectory files) parses.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark wall-clock measurement budget. Override with the
/// `CRITERION_SHIM_BUDGET_MS` environment variable.
fn measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// Substring filter on the full `group/id` benchmark label, mirroring real
/// criterion's CLI filtering: the first non-flag command-line argument
/// (`cargo bench --bench foo -- some_group`), or the
/// `CRITERION_SHIM_FILTER` environment variable. Benchmarks whose label
/// does not contain the filter are skipped entirely (not run, not
/// reported) — CI smoke steps use this to exercise one group cheaply.
fn name_filter() -> Option<String> {
    if let Ok(f) = std::env::var("CRITERION_SHIM_FILTER") {
        return Some(f);
    }
    // First positional argument, like real criterion — but never the
    // value of a value-taking flag (`--sample-size 100` must not turn
    // "100" into a filter that silently skips everything). Only flags
    // known to take no value may directly precede the filter; `--flag=x`
    // forms are self-contained and skipped as flags.
    const BARE_FLAGS: [&str; 5] = ["--bench", "--test", "--nocapture", "--quiet", "-q"];
    let mut prev_is_valued_flag = false;
    for arg in std::env::args().skip(1) {
        if arg.starts_with('-') {
            prev_is_valued_flag = !BARE_FLAGS.contains(&arg.as_str()) && !arg.contains('=');
        } else if prev_is_valued_flag {
            prev_is_valued_flag = false;
        } else {
            return Some(arg);
        }
    }
    None
}

/// Whether `label` survives [`name_filter`].
fn label_selected(label: &str) -> bool {
    match name_filter() {
        Some(f) => label.contains(&f),
        None => true,
    }
}

/// How a batched routine's setup cost is amortized. The shim runs every
/// variant one setup per routine call, which matches `PerIteration` and is
/// a sound upper bound for the others.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; criterion would batch many per allocation.
    SmallInput,
    /// Large setup output; criterion would batch few per allocation.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (used inside a group whose name is the prefix).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    /// Total time spent in the measured routine.
    elapsed: Duration,
    /// Number of routine invocations measured.
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Measures repeated calls of `routine` until the time budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one call outside the measurement.
        black_box(routine());
        let budget = measure_budget();
        let start = Instant::now();
        let mut iters = 0u64;
        let mut batch = 1u64;
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
            let elapsed = start.elapsed();
            if elapsed >= budget {
                self.elapsed = elapsed;
                self.iters = iters;
                return;
            }
            // Grow batches so Instant::now() overhead stays negligible.
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let budget = measure_budget();
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while measured < budget && wall.elapsed() < budget.saturating_mul(4) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.elapsed = measured;
        self.iters = iters.max(1);
    }

    fn report(&self, label: &str) {
        let ns = self.elapsed.as_nanos() as f64 / self.iters.max(1) as f64;
        let per_sec = if ns > 0.0 { 1e9 / ns } else { f64::INFINITY };
        println!(
            "{label}: {ns:.0} ns/iter ({per_sec:.1} iters/s, {} iters)",
            self.iters
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sample-size hint; the shim uses a wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint; the shim uses its own budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group (skipped if filtered out).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        if !label_selected(&label) {
            return self;
        }
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&label);
        self
    }

    /// Runs one parameterized benchmark in the group (skipped if filtered
    /// out).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.id);
        if !label_selected(&label) {
            return self;
        }
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&label);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs one stand-alone benchmark (skipped if filtered out).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if !label_selected(&id.id) {
            return self;
        }
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&id.id);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        std::env::set_var("CRITERION_SHIM_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        let mut count = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter_batched(|| vec![0u8; n as usize], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert!(count > 0);
    }
}
