//! Offline shim for the subset of the `rand` 0.9 API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible implementation of exactly
//! the surface the crates consume: [`rngs::StdRng`], [`SeedableRng`],
//! [`Rng::random_bool`] / [`Rng::random_range`], and
//! [`seq::SliceRandom::shuffle`]. Determinism per seed is the only
//! property the callers rely on (seeded generators and shuffled search
//! orders); statistical quality is provided by SplitMix64, which is more
//! than adequate for test-case generation.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range, monomorphized per output type.
pub trait SampleRange<T> {
    /// Draws one value in the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start() + unit_f64(rng.next_u64()) * (self.end() - self.start())
    }
}

/// Maps a raw word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }

    /// A uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // Discard one output so consecutive small seeds decorrelate.
            let _ = rng.next_u64();
            rng
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::Rng;

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u32), b.random_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5..=5u8);
            assert_eq!(y, 5);
            let f: f64 = rng.random_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left them sorted");
    }
}
