//! Minimal fixed-size thread pool, vendored for the offline build.
//!
//! The build environment cannot fetch crates.io, so the parallel safety
//! verifier's thread pool is this ~150-line shim over `std::thread` +
//! `std::sync` instead of `rayon`/`crossbeam`. The surface is deliberately
//! tiny: a [`ThreadPool`] owns `n` long-lived worker threads, and
//! [`ThreadPool::run`] hands every worker the same shared [`PoolJob`] and
//! blocks until all of them return from [`PoolJob::run`].
//!
//! That "everyone runs the same job" shape is exactly what a work-stealing
//! search wants: the job owns the shared task queue, memo table, and
//! cancellation flag, and each worker loops popping tasks from it. The
//! scheduling policy lives in the job, not the pool.
//!
//! Workers park on a condvar between jobs, so a pool can be reused across
//! many [`run`](ThreadPool::run) calls without paying thread-spawn latency
//! per call — the verifier benchmarks rely on this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A shared LIFO task queue for donation-based work stealing, with
/// **batched** donation: a worker that decides to hand off several sibling
/// subtrees pushes them in one [`push_batch`](DonationQueue::push_batch) —
/// one lock acquisition and one wakeup per chunk instead of one per task.
///
/// The queue tracks *pending* work (tasks queued **or** currently
/// executing): [`pop`](DonationQueue::pop) blocks while the queue is empty
/// but other workers still hold pending tasks (they may donate more), and
/// returns `None` once the space is drained (`pending == 0`) or the run is
/// [`cancel`](DonationQueue::cancel)led. Every popped task must be matched
/// by exactly one [`complete`](DonationQueue::complete) call.
///
/// [`idle_workers`](DonationQueue::idle_workers) exposes how many workers
/// are parked in `pop` — the donation signal: donating is only worth the
/// replay cost when someone is waiting to take the work.
///
/// The cancel flag is published and broadcast **while holding the queue
/// mutex**: `pop` re-checks the flag under that same mutex before parking,
/// so a store outside the lock could slot between a worker's flag check
/// and its wait — a lost wakeup that would park the worker forever (tasks
/// orphaned by cancellation keep `pending > 0`, so no later notification
/// would come).
pub struct DonationQueue<T> {
    state: Mutex<QueueState<T>>,
    cv: Condvar,
    idle: AtomicUsize,
    cancelled: AtomicBool,
}

struct QueueState<T> {
    tasks: Vec<T>,
    /// Tasks queued or currently executing; the work space is covered
    /// exactly when this reaches zero.
    pending: usize,
}

impl<T> Default for DonationQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DonationQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        DonationQueue {
            state: Mutex::new(QueueState {
                tasks: Vec::new(),
                pending: 0,
            }),
            cv: Condvar::new(),
            idle: AtomicUsize::new(0),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Workers currently parked in [`pop`](DonationQueue::pop). Donors
    /// read this (one relaxed load) to decide whether splitting off work
    /// is worth it.
    pub fn idle_workers(&self) -> usize {
        self.idle.load(Ordering::Relaxed)
    }

    /// Whether [`cancel`](DonationQueue::cancel) was called. One relaxed
    /// load — cheap enough to poll per search node.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Stops the run: parked workers wake and return `None` from `pop`;
    /// queued tasks are abandoned. Idempotent, never cleared.
    pub fn cancel(&self) {
        let _state = self.state.lock().expect("donation queue");
        self.cancelled.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// Donates every task in `batch` (drained, retaining its capacity for
    /// reuse) in one lock acquisition, waking as many workers as there are
    /// new tasks. No-op on an empty batch.
    pub fn push_batch(&self, batch: &mut Vec<T>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len();
        {
            let mut state = self.state.lock().expect("donation queue");
            state.pending += n;
            state.tasks.append(batch);
        }
        if n == 1 {
            self.cv.notify_one();
        } else {
            self.cv.notify_all();
        }
    }

    /// Pops a task, parking while the queue is empty but pending work
    /// remains (a running worker may donate). Returns `None` when the
    /// space is covered or the queue is cancelled.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("donation queue");
        loop {
            if self.cancelled.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(t) = state.tasks.pop() {
                return Some(t);
            }
            if state.pending == 0 {
                return None;
            }
            self.idle.fetch_add(1, Ordering::Relaxed);
            state = self.cv.wait(state).expect("donation queue");
            self.idle.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Marks one popped task finished; the last completion wakes every
    /// parked worker so they can observe `pending == 0` and drain.
    pub fn complete(&self) {
        let mut state = self.state.lock().expect("donation queue");
        state.pending = state
            .pending
            .checked_sub(1)
            .expect("complete without a matching pop");
        if state.pending == 0 {
            drop(state);
            self.cv.notify_all();
        }
    }
}

/// A unit of work executed cooperatively by every worker of a pool.
///
/// [`run`](PoolJob::run) is called once per worker, concurrently; the job
/// coordinates the workers through its own shared state (queues, atomics).
/// The pool-level barrier is the return: [`ThreadPool::run`] completes when
/// every worker's `run` has returned.
pub trait PoolJob: Send + Sync {
    /// Body executed by worker `worker` (`0..threads`).
    fn run(&self, worker: usize);
}

struct PoolState {
    /// Bumped once per dispatched job; workers run a job iff they have not
    /// seen its epoch yet.
    epoch: u64,
    job: Option<Arc<dyn PoolJob>>,
    /// Workers still inside `PoolJob::run` for the current epoch.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch.
    work_cv: Condvar,
    /// Dispatchers wait here for `active` to drain (and for the slot to
    /// free up before publishing the next job).
    done_cv: Condvar,
}

/// A fixed set of long-lived worker threads.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "ThreadPool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("workpool-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `job` on every worker and blocks until all of them return.
    ///
    /// Concurrent `run` calls from different threads are serialized: a
    /// second dispatcher waits for the pool to go idle before publishing.
    pub fn run(&self, job: Arc<dyn PoolJob>) {
        let n = self.threads();
        let mut state = self.shared.state.lock().expect("pool lock");
        while state.job.is_some() || state.active > 0 {
            state = self.shared.done_cv.wait(state).expect("pool lock");
        }
        state.epoch += 1;
        let epoch = state.epoch;
        state.job = Some(job);
        state.active = n;
        self.shared.work_cv.notify_all();
        while !(state.active == 0 && state.epoch == epoch) {
            state = self.shared.done_cv.wait(state).expect("pool lock");
        }
        state.job = None;
        // Wake any dispatcher queued behind us.
        self.shared.done_cv.notify_all();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch > seen_epoch {
                    if let Some(job) = &state.job {
                        seen_epoch = state.epoch;
                        break Arc::clone(job);
                    }
                }
                state = shared.work_cv.wait(state).expect("pool lock");
            }
        };
        job.run(worker);
        let mut state = shared.state.lock().expect("pool lock");
        state.active -= 1;
        if state.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountJob {
        hits: AtomicUsize,
        workers_seen: Mutex<Vec<usize>>,
    }

    impl PoolJob for CountJob {
        fn run(&self, worker: usize) {
            self.hits.fetch_add(1, Ordering::SeqCst);
            self.workers_seen.lock().unwrap().push(worker);
        }
    }

    #[test]
    fn every_worker_runs_the_job_once() {
        let pool = ThreadPool::new(4);
        let job = Arc::new(CountJob {
            hits: AtomicUsize::new(0),
            workers_seen: Mutex::new(Vec::new()),
        });
        pool.run(job.clone());
        assert_eq!(job.hits.load(Ordering::SeqCst), 4);
        let mut seen = job.workers_seen.lock().unwrap().clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = ThreadPool::new(2);
        let job = Arc::new(CountJob {
            hits: AtomicUsize::new(0),
            workers_seen: Mutex::new(Vec::new()),
        });
        for _ in 0..10 {
            pool.run(job.clone());
        }
        assert_eq!(job.hits.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn donation_queue_drains_batches_across_threads() {
        let queue = Arc::new(DonationQueue::new());
        queue.push_batch(&mut vec![0u32]);
        let consumed = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let consumed = Arc::clone(&consumed);
                std::thread::spawn(move || {
                    while let Some(task) = queue.pop() {
                        // The root task fans out two batches of children;
                        // everything else is a leaf.
                        if task == 0 {
                            queue.push_batch(&mut (1..=8u32).collect());
                            queue.push_batch(&mut (9..=16u32).collect());
                        }
                        consumed.fetch_add(1, Ordering::SeqCst);
                        queue.complete();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::SeqCst), 17);
        assert_eq!(queue.idle_workers(), 0);
        assert!(!queue.is_cancelled());
    }

    #[test]
    fn donation_queue_cancel_releases_parked_workers() {
        let queue = Arc::new(DonationQueue::<u32>::new());
        // One pending task that is never completed keeps poppers parked.
        queue.push_batch(&mut vec![1]);
        assert_eq!(queue.pop(), Some(1));
        let parked = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        while queue.idle_workers() == 0 {
            std::thread::yield_now();
        }
        queue.cancel();
        assert_eq!(parked.join().unwrap(), None);
        assert!(queue.is_cancelled());
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn donation_queue_empty_batch_is_a_no_op() {
        let queue = DonationQueue::<u32>::new();
        queue.push_batch(&mut Vec::new());
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let job = Arc::new(CountJob {
            hits: AtomicUsize::new(0),
            workers_seen: Mutex::new(Vec::new()),
        });
        pool.run(job.clone());
        assert_eq!(job.hits.load(Ordering::SeqCst), 1);
    }
}
