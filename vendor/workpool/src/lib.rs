//! Minimal fixed-size thread pool, vendored for the offline build.
//!
//! The build environment cannot fetch crates.io, so the parallel safety
//! verifier's thread pool is this ~150-line shim over `std::thread` +
//! `std::sync` instead of `rayon`/`crossbeam`. The surface is deliberately
//! tiny: a [`ThreadPool`] owns `n` long-lived worker threads, and
//! [`ThreadPool::run`] hands every worker the same shared [`PoolJob`] and
//! blocks until all of them return from [`PoolJob::run`].
//!
//! That "everyone runs the same job" shape is exactly what a work-stealing
//! search wants: the job owns the shared task queue, memo table, and
//! cancellation flag, and each worker loops popping tasks from it. The
//! scheduling policy lives in the job, not the pool.
//!
//! Workers park on a condvar between jobs, so a pool can be reused across
//! many [`run`](ThreadPool::run) calls without paying thread-spawn latency
//! per call — the verifier benchmarks rely on this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work executed cooperatively by every worker of a pool.
///
/// [`run`](PoolJob::run) is called once per worker, concurrently; the job
/// coordinates the workers through its own shared state (queues, atomics).
/// The pool-level barrier is the return: [`ThreadPool::run`] completes when
/// every worker's `run` has returned.
pub trait PoolJob: Send + Sync {
    /// Body executed by worker `worker` (`0..threads`).
    fn run(&self, worker: usize);
}

struct PoolState {
    /// Bumped once per dispatched job; workers run a job iff they have not
    /// seen its epoch yet.
    epoch: u64,
    job: Option<Arc<dyn PoolJob>>,
    /// Workers still inside `PoolJob::run` for the current epoch.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch.
    work_cv: Condvar,
    /// Dispatchers wait here for `active` to drain (and for the slot to
    /// free up before publishing the next job).
    done_cv: Condvar,
}

/// A fixed set of long-lived worker threads.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool of `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "ThreadPool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("workpool-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `job` on every worker and blocks until all of them return.
    ///
    /// Concurrent `run` calls from different threads are serialized: a
    /// second dispatcher waits for the pool to go idle before publishing.
    pub fn run(&self, job: Arc<dyn PoolJob>) {
        let n = self.threads();
        let mut state = self.shared.state.lock().expect("pool lock");
        while state.job.is_some() || state.active > 0 {
            state = self.shared.done_cv.wait(state).expect("pool lock");
        }
        state.epoch += 1;
        let epoch = state.epoch;
        state.job = Some(job);
        state.active = n;
        self.shared.work_cv.notify_all();
        while !(state.active == 0 && state.epoch == epoch) {
            state = self.shared.done_cv.wait(state).expect("pool lock");
        }
        state.job = None;
        // Wake any dispatcher queued behind us.
        self.shared.done_cv.notify_all();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch > seen_epoch {
                    if let Some(job) = &state.job {
                        seen_epoch = state.epoch;
                        break Arc::clone(job);
                    }
                }
                state = shared.work_cv.wait(state).expect("pool lock");
            }
        };
        job.run(worker);
        let mut state = shared.state.lock().expect("pool lock");
        state.active -= 1;
        if state.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountJob {
        hits: AtomicUsize,
        workers_seen: Mutex<Vec<usize>>,
    }

    impl PoolJob for CountJob {
        fn run(&self, worker: usize) {
            self.hits.fetch_add(1, Ordering::SeqCst);
            self.workers_seen.lock().unwrap().push(worker);
        }
    }

    #[test]
    fn every_worker_runs_the_job_once() {
        let pool = ThreadPool::new(4);
        let job = Arc::new(CountJob {
            hits: AtomicUsize::new(0),
            workers_seen: Mutex::new(Vec::new()),
        });
        pool.run(job.clone());
        assert_eq!(job.hits.load(Ordering::SeqCst), 4);
        let mut seen = job.workers_seen.lock().unwrap().clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = ThreadPool::new(2);
        let job = Arc::new(CountJob {
            hits: AtomicUsize::new(0),
            workers_seen: Mutex::new(Vec::new()),
        });
        for _ in 0..10 {
            pool.run(job.clone());
        }
        assert_eq!(job.hits.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let job = Arc::new(CountJob {
            hits: AtomicUsize::new(0),
            workers_seen: Mutex::new(Vec::new()),
        });
        pool.run(job.clone());
        assert_eq!(job.hits.load(Ordering::SeqCst), 1);
    }
}
