//! Offline shim for `rustc-hash`: the Fx multiply-rotate hash used by the
//! Rust compiler, exposed as drop-in [`FxHashMap`] / [`FxHashSet`] aliases.
//!
//! The build environment cannot fetch crates.io, so the workspace vendors
//! this ~60-line implementation of the well-known algorithm. Fx is not a
//! cryptographic hash and has no DoS resistance — it is used here purely
//! on hot paths (verifier memo table, simulator bookkeeping) where keys
//! are small integers and SipHash's per-probe cost dominates.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FireFox/rustc multiply-rotate hasher.
#[derive(Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_behave() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u128, u128)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.contains(&(1, 2)));
    }

    #[test]
    fn hashing_is_deterministic_across_builders() {
        use std::hash::BuildHasher;
        let b1 = FxBuildHasher::default();
        let b2 = FxBuildHasher::default();
        let hash = |b: &FxBuildHasher, v: &(u64, u32)| b.hash_one(v);
        assert_eq!(hash(&b1, &(42, 7)), hash(&b2, &(42, 7)));
        assert_ne!(hash(&b1, &(42, 7)), hash(&b1, &(42, 8)));
    }
}
