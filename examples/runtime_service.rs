//! The concurrent transaction runtime: worker threads, one shared policy
//! engine, and a trace you can re-verify against the formal model.
//!
//! Runs the same hot-contention workload through 2PL and through the DDAG
//! policy (deep dominator traversals for the latter), prints the runtime
//! report — throughput, latency percentiles, abort accounting — and then
//! does what the paper says you may do with any execution of a safe
//! policy: replay the captured schedule and check it is legal, proper,
//! and serializable.
//!
//! Run with: `cargo run --example runtime_service`

use safe_locking::core::{is_serializable, EntityId};
use safe_locking::policies::{PolicyConfig, PolicyKind};
use safe_locking::runtime::{Runtime, RuntimeConfig, RuntimeReport};
use safe_locking::sim::{deep_dag_jobs, hot_cold_jobs, layered_dag};

fn describe(report: &RuntimeReport) -> bool {
    println!(
        "  {:<12} {} workers: {} committed, {} policy aborts, {} deadlock aborts, \
         {} lock waits",
        report.policy,
        report.workers,
        report.committed,
        report.policy_aborts,
        report.deadlock_aborts,
        report.lock_waits
    );
    println!(
        "  {:<12} throughput {:.0} jobs/s; latency p50 {} µs, p95 {} µs, p99 {} µs",
        "", // align under the policy name
        report.throughput(),
        report.latency.p50_us,
        report.latency.p95_us,
        report.latency.p99_us
    );
    let ok = report.schedule.is_legal()
        && report.schedule.is_proper(&report.initial)
        && is_serializable(&report.schedule);
    println!(
        "  {:<12} trace: {} steps, replay verdict: {}",
        "",
        report.schedule.len(),
        if ok {
            "legal + proper + SERIALIZABLE"
        } else {
            "VIOLATION (file a bug!)"
        }
    );
    ok
}

// Exits nonzero when any trace fails certification, so the example
// doubles as a smoke check in CI.
fn main() {
    let mut all_certified = true;
    println!("== slp-runtime: concurrent transactions over the policy API ==\n");

    // 2PL over a hot/cold contention mix: 120 jobs, 3 targets each, 80%
    // of draws landing on a 4-entity hot set.
    let pool: Vec<EntityId> = (0..32).map(EntityId).collect();
    let jobs = hot_cold_jobs(&pool, 120, 3, 4, 0.8, 42);
    println!("hot/cold contention, {} jobs:", jobs.len());
    for workers in [1usize, 4] {
        let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool.clone()))
            .expect("2PL builds");
        let config = RuntimeConfig::with_workers(workers).with_env_overrides();
        let report = rt.run(&jobs, &config);
        all_certified &= describe(&report);
    }

    // The DDAG policy over deep dominator traversals: every job targets
    // the deepest layer, so planned regions overlap heavily and workers
    // park/wake on the shared upper chains.
    let dag = layered_dag(5, 4, 2, 42);
    let dag_jobs = deep_dag_jobs(&dag, 40, 2, 42);
    println!("\ndeep dominator traversals, {} jobs:", dag_jobs.len());
    let config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
    let mut rt = Runtime::new(PolicyKind::Ddag, &config).expect("DDAG builds");
    let report = rt.run(
        &dag_jobs,
        &RuntimeConfig::with_workers(4).with_env_overrides(),
    );
    all_certified &= describe(&report);

    if !all_certified {
        eprintln!("\nFAILED: a safe policy emitted a trace that did not certify.");
        std::process::exit(1);
    }
    println!("\nEvery trace above was re-verified offline — the runtime is the");
    println!("paper's theorems exercised under real threads.");
}
