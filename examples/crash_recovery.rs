//! Kill-and-recover, end to end: a durable runtime run, a simulated
//! crash that tears the write-ahead log mid-byte, and a recovery that
//! replays the surviving prefix and re-certifies it against the paper's
//! criteria (legal + proper + serializable).
//!
//! The durability contract on display:
//!
//! 1. a clean shutdown recovers the *entire* execution, commit for
//!    commit;
//! 2. a crash at an arbitrary byte prefix recovers a stamp-contiguous
//!    *prefix* of the execution — never a torn or reordered one;
//! 3. whatever survives independently re-certifies, because
//!    conflict-serializability is prefix-closed;
//! 4. recovery from the newest checkpoint (the fast path) lands on the
//!    same state as replaying everything from the base.
//!
//! Run with: `cargo run --example crash_recovery`

use safe_locking::core::EntityId;
use safe_locking::policies::{PolicyConfig, PolicyKind};
use safe_locking::runtime::{
    recover, RecoveryMode, Runtime, RuntimeConfig, SharedMemStore, WalConfig,
};
use safe_locking::sim::hot_cold_jobs;
use std::sync::Arc;

fn main() {
    println!("== slp-durability: write-ahead log + crash recovery ==\n");

    // A durable run: every granted step is appended to the log (group
    // committed), checkpoints ride along, commits carry the watermark
    // they need to be durable.
    let pool: Vec<EntityId> = (0..24).map(EntityId).collect();
    let jobs = hot_cold_jobs(&pool, 60, 3, 4, 0.8, 42);
    let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool)).expect("2PL builds");
    let handle = SharedMemStore::new();
    let wal = Arc::new(
        rt.create_wal(
            Box::new(handle.clone()),
            WalConfig {
                segment_bytes: 4096,
                group_commit: 4,
                checkpoint_every: 64,
                ..WalConfig::default()
            },
        )
        .expect("fresh store"),
    );
    let config = RuntimeConfig::with_workers(4).with_env_overrides();
    let report = rt.run_durable(&jobs, &config, wal);
    let summary = report.wal.expect("durable run reports its log");
    println!(
        "ran {} jobs on {} workers: {} trace steps, {} committed",
        jobs.len(),
        report.workers,
        report.schedule.len(),
        report.committed
    );
    println!(
        "log: {} records / {} bytes across {} segments, {} fsyncs, {} checkpoints\n",
        summary.records, summary.bytes, summary.segments, summary.syncs, summary.checkpoints
    );
    assert!(!summary.failed, "in-memory store cannot fail");

    // Act 1 — clean shutdown. The flushed log replays to the whole run.
    let full = handle.snapshot();
    let r = recover(&full, RecoveryMode::Oldest).expect("clean log recovers");
    println!("clean recovery:");
    println!(
        "  watermark {} / {} steps, {} commits durable",
        r.watermark,
        report.schedule.len(),
        r.committed.len()
    );
    assert_eq!(r.watermark, report.schedule.len() as u64);
    assert_eq!(r.committed.len(), report.committed);
    r.certify().expect("full recovery certifies");
    println!("  re-certified: legal + proper + SERIALIZABLE\n");

    // Act 2 — kill -9. Chop the log at an arbitrary byte offset (2/3 in,
    // mid-frame more often than not) and recover what survives.
    let total = full.total_bytes();
    let cut = total * 2 / 3;
    let torn = full.prefix(cut);
    let r = recover(&torn, RecoveryMode::Oldest).expect("torn log still recovers");
    println!("crash at byte {cut}/{total}:");
    if let Some(t) = &r.truncation {
        println!(
            "  tail truncated in segment {} at offset {} ({:?})",
            t.segment, t.offset, t.reason
        );
    }
    println!(
        "  recovered watermark {} / {} steps, {} of {} commits durable",
        r.watermark,
        report.schedule.len(),
        r.committed.len(),
        report.committed
    );
    // Prefix consistency: the recovered tail is exactly the run's trace
    // up to the watermark — stamps arbitrate the cross-worker order, so
    // a torn group-commit batch can only cost a suffix.
    for (i, &(stamp, step)) in r.tail.iter().enumerate() {
        assert_eq!(stamp, i as u64, "tail must be stamp-contiguous");
        assert_eq!(
            step,
            report.schedule.steps()[stamp as usize],
            "recovered step diverges from the execution"
        );
    }
    r.certify().expect("the surviving prefix certifies");
    println!("  re-certified: legal + proper + SERIALIZABLE (a prefix of the run)\n");

    // Act 3 — the fast path agrees. Seeding from the newest surviving
    // checkpoint replays less but must land on the same state.
    let fast = recover(&torn, RecoveryMode::Newest).expect("newest-checkpoint mode");
    assert_eq!(fast.state, r.state, "checkpoint fidelity");
    assert_eq!(fast.watermark, r.watermark);
    println!(
        "fast recovery from the newest checkpoint: replayed {} steps instead of {}, same state",
        fast.tail.len(),
        r.tail.len()
    );
    println!("\nA crash can cost a suffix — never safety.");
}
