//! Open-loop load generator for the transaction runtime: a scenario
//! catalog that drives `slp-runtime` at volume with the online
//! serializability certifier enabled, then prints the lock-free
//! [`Metrics`](safe_locking::runtime::Metrics) snapshot.
//!
//! Scenarios:
//!
//! * **hot-key storm** — 2PL over a hot/cold mix with a tiny hot set:
//!   most jobs collide, stressing queues, parks, and wakes;
//! * **long-lived transactions** — the altruistic policy's home turf: one
//!   long scan amid a crowd of short jobs (the \[SGMS94\] workload);
//! * **structural churn** — the DDAG policy over a growing DAG: fresh
//!   nodes interned and inserted concurrently with deep traversals;
//! * **read-heavy** — MVCC snapshot reads on: 90% of the jobs are
//!   read-only and execute against versioned snapshots without touching
//!   the lock service, while the writer minority runs locked 2PL;
//! * **wave-scheduled storm** — the hot-key storm admitted through the
//!   conflict-DAG batch scheduler (waves mode), plus a deterministic-mode
//!   double run that must produce byte-identical schedules;
//! * **mutant probe** — a negative control: `AltruisticNoWake` (a policy
//!   with its safety rule ablated) runs in strict certification mode
//!   until the certifier halts a run at a serialization-graph cycle, and
//!   the halted schedule is re-checked offline.
//!
//! Safe scenarios must certify online with **zero** violations and
//! balanced accounting; the probe must be *caught*. Any miss exits
//! nonzero, so the generator doubles as a CI smoke check.
//!
//! Run with: `cargo run --release --example load_service -- --smoke`
//! (10 000 jobs per scenario) or `-- --jobs N` for a custom volume.

use safe_locking::core::{is_serializable, EntityId};
use safe_locking::policies::{PolicyConfig, PolicyKind};
use safe_locking::runtime::{CertifyMode, Runtime, RuntimeConfig, RuntimeReport, SchedMode};
use safe_locking::sim::{
    dag_mixed_jobs, hot_cold_jobs, layered_dag, long_short_jobs, read_heavy_jobs,
};

/// Jobs per safe scenario without flags (quick local run).
const DEFAULT_JOBS: usize = 2_000;
/// Jobs per safe scenario under `--smoke` (the CI configuration).
const SMOKE_JOBS: usize = 10_000;

/// A throughput-oriented config with the online certifier monitoring:
/// batched grants and no per-step yield (the generator measures volume,
/// not interleaving diversity). Env overrides still apply, so the CI
/// matrix can pin workers and certification mode.
fn load_config(workers: usize) -> RuntimeConfig {
    let mut config = RuntimeConfig {
        grant_batch: 8,
        step_yield: false,
        certify_online: CertifyMode::Monitor,
        max_wall: std::time::Duration::from_secs(120),
        ..RuntimeConfig::with_workers(workers)
    }
    .with_env_overrides();
    // The generator's whole point is the online verdict: keep the
    // certifier on even if the environment says `off`.
    if config.certify_online == CertifyMode::Off {
        config.certify_online = CertifyMode::Monitor;
    }
    config
}

/// Checks a safe scenario's run: balanced accounting, no lost jobs, and
/// a clean online certification verdict. Returns `false` (and says why)
/// on any miss — no offline replay here, because at load-generator
/// volume the quadratic replay would dwarf the run itself; the online
/// certifier *is* the serializability check.
fn check_safe(report: &RuntimeReport, jobs: usize, name: &str) -> bool {
    let mut ok = true;
    if report.timed_out {
        eprintln!("  {name}: FAILED — run hit the wall-clock guard");
        ok = false;
    }
    if !report.accounting_balances() {
        eprintln!(
            "  {name}: FAILED — attempts ({}) do not balance the outcomes",
            report.attempts
        );
        ok = false;
    }
    if report.committed + report.rejected != jobs {
        eprintln!(
            "  {name}: FAILED — lost jobs ({} committed + {} rejected != {jobs})",
            report.committed, report.rejected
        );
        ok = false;
    }
    match report.certified_serializable() {
        Some(true) => {}
        Some(false) => {
            let c = report
                .certification
                .as_ref()
                .expect("verdict implies certification");
            eprintln!(
                "  {name}: FAILED — online certifier latched a cycle: {:?}",
                c.violation
            );
            ok = false;
        }
        None => {
            eprintln!("  {name}: FAILED — run did not certify online");
            ok = false;
        }
    }
    ok
}

fn describe(report: &RuntimeReport, name: &str) {
    println!(
        "  {name}: {} committed, {} policy aborts, {} deadlock aborts, {} rejected; \
         {:.0} jobs/s, p50 {} µs, p99 {} µs",
        report.committed,
        report.policy_aborts,
        report.deadlock_aborts,
        report.rejected,
        report.throughput(),
        report.latency.p50_us,
        report.latency.p99_us
    );
    if let Some(cert) = &report.certification {
        println!(
            "  {name}: certified ONLINE — {} steps, {} edges, {} truncations, \
             peak graph {} nodes",
            cert.stats.steps, cert.stats.edges, cert.stats.truncations, cert.stats.peak_nodes
        );
    }
}

/// Scenario 1: hot-key storm. 2PL, 3 targets per job, 90% of draws on a
/// 4-entity hot set out of 64.
fn hot_key_storm(jobs: usize, workers: usize) -> bool {
    let pool: Vec<EntityId> = (0..64).map(EntityId).collect();
    let work = hot_cold_jobs(&pool, jobs, 3, 4, 0.9, 0xB0A7);
    let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool)).expect("2PL builds");
    let report = rt.run(&work, &load_config(workers));
    describe(&report, "hot-key storm");
    let ok = check_safe(&report, work.len(), "hot-key storm");
    if ok {
        // The metrics registry folds every run on this Runtime; one full
        // snapshot shows the exposition format.
        println!("\n  metrics snapshot (hot-key storm):");
        for line in rt.metrics().render().lines() {
            println!("    {line}");
        }
    }
    ok
}

/// Scenario 2: long-lived transactions. The altruistic policy with one
/// long scan over half the pool amid short two-entity jobs.
fn long_lived(jobs: usize, workers: usize) -> bool {
    let pool: Vec<EntityId> = (0..48).map(EntityId).collect();
    let work = long_short_jobs(&pool, 24, jobs.saturating_sub(1), 2, 0x10A6);
    let mut rt =
        Runtime::new(PolicyKind::Altruistic, &PolicyConfig::flat(pool)).expect("altruistic builds");
    let report = rt.run(&work, &load_config(workers));
    describe(&report, "long-lived");
    check_safe(&report, work.len(), "long-lived")
}

/// Scenario 3: structural churn. DDAG traversals over a layered DAG with
/// 2% of the jobs inserting fresh nodes (interned through the engine
/// before the run, inserted concurrently during it). The DAG is wide and
/// shallow so dominator closures stay short, and the insert rate is kept
/// low because planning cost grows with the interned universe — the run
/// measures churn volume, not total-overlap contention.
fn structural_churn(jobs: usize, workers: usize) -> bool {
    let dag = layered_dag(3, 24, 2, 0xC4A2);
    let config = PolicyConfig::dag(dag.universe.clone(), dag.graph.clone());
    let mut rt = Runtime::new(PolicyKind::Ddag, &config).expect("DDAG builds");
    let work = {
        let mut intern = |name: &str| rt.intern(name).expect("DDAG interns");
        dag_mixed_jobs(&dag, jobs, 2, 0.02, &mut intern, 0xC4A2)
    };
    let report = rt.run(&work, &load_config(workers));
    describe(&report, "structural churn");
    check_safe(&report, work.len(), "structural churn")
}

/// Scenario 4: read-heavy with MVCC snapshot reads. 90% of the jobs are
/// read-only and take the snapshot path (no lock requests at all); the
/// writer minority hammers a 4-entity hot set under 2PL. The run must
/// certify online like any other safe scenario, and the split between
/// snapshot reads and lock grants is printed as evidence the read path
/// really bypassed the lock service.
fn read_heavy(jobs: usize, workers: usize) -> bool {
    let pool: Vec<EntityId> = (0..64).map(EntityId).collect();
    let work = read_heavy_jobs(&pool, jobs, 3, 4, 0.9, 0x5EAD);
    let reads: u64 = work
        .iter()
        .filter(|j| j.read_only)
        .map(|j| j.targets.len() as u64)
        .sum();
    let mut config = load_config(workers);
    // Pin snapshot reads on after env overrides: the scenario *is* the
    // snapshot read path.
    config.snapshot_reads = true;
    let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool)).expect("2PL builds");
    let report = rt.run(&work, &config);
    describe(&report, "read-heavy");
    println!(
        "  read-heavy: {} snapshot reads vs {} lock grants ({} read-only jobs never \
         touched the lock service)",
        report.snapshot_reads,
        report.grants,
        work.iter().filter(|j| j.read_only).count()
    );
    let mut ok = check_safe(&report, work.len(), "read-heavy");
    if report.snapshot_reads != reads {
        eprintln!(
            "  read-heavy: FAILED — {} snapshot reads recorded, expected {reads}",
            report.snapshot_reads
        );
        ok = false;
    }
    ok
}

/// Scenario 5: wave-scheduled storm. The hot-key storm workload again,
/// but admitted through the conflict-DAG batch scheduler
/// ([`SchedMode::Waves`]): declared conflicts are layered into
/// barrier-separated waves up front, so the hot set's collisions are
/// resolved by admission ordering instead of grant-time parking. The run
/// must certify online like the unscheduled storm, the wave accounting
/// must partition the queue, and the DAG must have found the contention
/// (`sched_parks_avoided > 0`). A deterministic-mode double run at a
/// quarter of the volume then pins the replayable contract: identical
/// outcome fingerprint *and* byte-identical merged schedule.
fn wave_scheduled_storm(jobs: usize, workers: usize) -> bool {
    let pool: Vec<EntityId> = (0..64).map(EntityId).collect();
    let work = hot_cold_jobs(&pool, jobs, 3, 4, 0.9, 0xB0A7);
    let mut config = load_config(workers);
    // Pin waves mode after env overrides: the scenario *is* the batch
    // scheduler (the CI matrix still varies workers underneath it).
    config.scheduler = SchedMode::Waves;
    let mut rt =
        Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool.clone())).expect("2PL builds");
    let report = rt.run(&work, &config);
    describe(&report, "wave-scheduled storm");
    println!(
        "  wave-scheduled storm: {} waves (widest {}), {} conflict edges resolved at \
         admission, {} grant-time lock waits remained",
        report.waves,
        report.wave_widths.iter().max().copied().unwrap_or(0),
        report.sched_parks_avoided,
        report.lock_waits
    );
    let mut ok = check_safe(&report, work.len(), "wave-scheduled storm");
    let widths: usize = report.wave_widths.iter().map(|&w| w as usize).sum();
    if widths != work.len() || report.waves != report.wave_widths.len() {
        eprintln!(
            "  wave-scheduled storm: FAILED — {} waves / width sum {widths} do not \
             partition {} jobs",
            report.waves,
            work.len()
        );
        ok = false;
    }
    if report.sched_parks_avoided == 0 {
        eprintln!(
            "  wave-scheduled storm: FAILED — a 90%-hot workload produced no conflict \
             edges; the DAG builder saw no contention"
        );
        ok = false;
    }
    // Deterministic pin at volume: same workload, two runs, one quarter
    // of the jobs (the serial-ordering contract costs throughput; the
    // pin needs volume, not the full storm).
    config.scheduler = SchedMode::Deterministic;
    let det_work = hot_cold_jobs(&pool, (jobs / 4).max(64), 3, 4, 0.9, 0xDE7);
    let runs: Vec<RuntimeReport> = (0..2)
        .map(|_| {
            let mut rt = Runtime::new(PolicyKind::TwoPhase, &PolicyConfig::flat(pool.clone()))
                .expect("2PL builds");
            rt.run(&det_work, &config)
        })
        .collect();
    for r in &runs {
        ok &= check_safe(r, det_work.len(), "wave-scheduled storm (deterministic)");
    }
    if runs[0].outcome_fingerprint() != runs[1].outcome_fingerprint()
        || runs[0].schedule != runs[1].schedule
    {
        eprintln!(
            "  wave-scheduled storm: FAILED — deterministic mode produced diverging \
             runs ({} vs {} steps)",
            runs[0].schedule.len(),
            runs[1].schedule.len()
        );
        ok = false;
    } else {
        println!(
            "  wave-scheduled storm: deterministic double run pinned — {} steps, \
             byte-identical schedules",
            runs[0].schedule.len()
        );
    }
    ok
}

/// Scenario 6: mutant probe. `AltruisticNoWake` drops the wake rule that
/// makes altruistic locking safe; strict-mode certification must halt a
/// run at the closing edge of a serialization-graph cycle within the
/// seed sweep, and the halted schedule must replay nonserializable
/// offline (the differential check is cheap — strict halt keeps the
/// schedule small).
fn mutant_probe(workers: usize) -> bool {
    let pool: Vec<EntityId> = (0..12).map(EntityId).collect();
    // Apply env overrides first, then pin what the probe needs: strict
    // certification (the halt is the point), and ≥ 4 workers — a single
    // worker cannot interleave, so the mutant cannot misbehave when the
    // CI matrix pins SLP_RUNTIME_THREADS=1.
    let mut config = RuntimeConfig::with_workers(workers).with_env_overrides();
    config.workers = config.workers.max(4);
    config.certify_online = CertifyMode::Strict;
    for seed in 0..80u64 {
        let work = long_short_jobs(&pool, 8, 30, 2, seed);
        for _ in 0..3 {
            let mut rt = Runtime::new(
                PolicyKind::AltruisticNoWake,
                &PolicyConfig::flat(pool.clone()),
            )
            .expect("mutant builds");
            let report = rt.run(&work, &config);
            if report.certified_serializable() == Some(false) {
                let cert = report
                    .certification
                    .as_ref()
                    .expect("violation implies certification");
                println!(
                    "  mutant probe: CAUGHT at seed {seed} — cycle {:?} at stamp {}, \
                     run halted after {} steps",
                    cert.violation.as_ref().map(|v| &v.cycle),
                    cert.violation.as_ref().map(|v| v.stamp).unwrap_or(0),
                    report.schedule.len()
                );
                if is_serializable(&report.schedule) {
                    eprintln!(
                        "  mutant probe: FAILED — offline replay disagrees with the \
                         online verdict (file a bug!)"
                    );
                    return false;
                }
                println!("  mutant probe: offline replay agrees — nonserializable");
                return true;
            }
        }
    }
    eprintln!("  mutant probe: FAILED — certifier never caught the mutant in the sweep");
    false
}

fn main() {
    let mut jobs = DEFAULT_JOBS;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => jobs = SMOKE_JOBS,
            "--jobs" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                jobs = n;
            }
            _ => usage(),
        }
    }

    let workers = RuntimeConfig::env_workers().unwrap_or(4);
    println!("== slp-runtime load generator: {jobs} jobs/scenario, {workers} workers ==\n");

    let mut all_ok = true;
    for (name, run) in [
        ("hot-key storm", hot_key_storm as fn(usize, usize) -> bool),
        ("long-lived transactions", long_lived),
        ("structural churn", structural_churn),
        ("read-heavy (snapshot reads)", read_heavy),
        ("wave-scheduled storm", wave_scheduled_storm),
    ] {
        println!("scenario: {name}");
        all_ok &= run(jobs, workers);
        println!();
    }
    println!("scenario: mutant probe (strict certification)");
    all_ok &= mutant_probe(workers);

    if !all_ok {
        eprintln!("\nFAILED: a scenario missed its certification or accounting target.");
        std::process::exit(1);
    }
    println!("\nEvery safe scenario certified serializable online with balanced");
    println!("accounting, and the mutant was halted at the closing edge.");
}

fn usage() -> ! {
    eprintln!("usage: load_service [--smoke | --jobs N]");
    std::process::exit(2);
}
