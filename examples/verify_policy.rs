//! Using Theorem 1 as a working tool: verify a locking discipline, get a
//! canonical counterexample when it is broken, and shrink it.
//!
//! The exhaustive verifier and the canonical (Theorem 1) search are run on
//! the same systems; the theorem says they must agree, and the canonical
//! witness explains *why* a policy is broken in the paper's own terms
//! (culprit transaction `Tc`, entity `A*`, serial prefix schedule).
//!
//! Run with: `cargo run --example verify_policy`

use safe_locking::core::display::render_schedule;
use safe_locking::core::{SerializationGraph, SystemBuilder};
use safe_locking::verifier::{
    find_canonical_witness, minimize_witness, random_system, verify_safety, CanonicalBudget,
    GenParams, SearchBudget,
};

fn main() {
    // ------------------------------------------------------------------
    // 1. A broken discipline: crawling without the DDAG rules.
    // ------------------------------------------------------------------
    println!("== Canonical counterexample for a broken policy ==\n");
    // Two "traversals" that release each node right after use — the naive
    // crawling discipline the DDAG policy's rule L5 exists to repair.
    let mut b = SystemBuilder::new();
    b.exists("n1");
    b.exists("n2");
    b.tx(1)
        .lx("n1")
        .read("n1")
        .write("n1")
        .ux("n1")
        .lx("n2")
        .read("n2")
        .write("n2")
        .ux("n2")
        .finish();
    b.tx(2)
        .lx("n1")
        .read("n1")
        .write("n1")
        .ux("n1")
        .lx("n2")
        .read("n2")
        .write("n2")
        .ux("n2")
        .finish();
    let system = b.build();

    let verdict = verify_safety(&system, SearchBudget::default());
    println!("exhaustive search: unsafe = {}", verdict.is_unsafe());

    let outcome = find_canonical_witness(&system, CanonicalBudget::default());
    let witness = outcome
        .witness()
        .expect("Theorem 1: unsafe => canonical witness");
    println!("canonical search : {witness}");
    println!("\nTheorem 1 reading of the witness:");
    println!(
        "  condition 1  — {} locks {} after having unlocked an entity",
        witness.tc, witness.a_star
    );
    let s_prime = witness.serial_prefix(&system);
    println!("  condition 2  — the serial prefix schedule S':");
    println!("{}", render_schedule(&s_prime, system.universe()));
    let d = SerializationGraph::of(&s_prime);
    println!("  D(S') = {d}");
    println!(
        "  sinks of D(S') release {} in a conflicting mode (2a)",
        witness.a_star
    );
    println!("  extension to a complete legal proper schedule exists (2b):");
    println!("{}", render_schedule(&witness.extension, system.universe()));
    assert!(!safe_locking::core::is_serializable(&witness.extension));
    println!("  ... and every such completion is nonserializable. ∎");

    // ------------------------------------------------------------------
    // 2. Witness minimization on a randomized unsafe system.
    // ------------------------------------------------------------------
    println!("\n== Minimizing a randomized counterexample ==\n");
    let params = GenParams {
        transactions: 4,
        ..GenParams::default()
    };
    for seed in 0..200 {
        let system = random_system(params, seed);
        let verdict = verify_safety(&system, SearchBudget::default());
        if let Some(w) = verdict.witness() {
            if w.participants().len() >= 3 {
                let min = minimize_witness(w, system.initial_state());
                println!(
                    "seed {seed}: witness has {} transactions, {} steps",
                    w.participants().len(),
                    w.len()
                );
                println!(
                    "minimized to {} transactions, {} steps:",
                    min.participants().len(),
                    min.len()
                );
                println!("{}", render_schedule(&min, system.universe()));
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // 3. Theorem 1 agreement on a batch of random systems.
    // ------------------------------------------------------------------
    println!("== Theorem 1: exhaustive vs canonical on 30 random systems ==\n");
    let mut agree = 0;
    let mut n_unsafe = 0;
    for seed in 0..30 {
        let system = random_system(GenParams::default(), seed);
        let a = verify_safety(&system, SearchBudget::default()).is_unsafe();
        let b = find_canonical_witness(&system, CanonicalBudget::default())
            .witness()
            .is_some();
        assert_eq!(a, b, "Theorem 1 violated at seed {seed}!");
        agree += 1;
        n_unsafe += usize::from(a);
    }
    println!("{agree}/30 verdicts agree ({n_unsafe} unsafe systems) — as Theorem 1 demands.");
}
