//! Quickstart: the dynamic-database model in five minutes.
//!
//! Reproduces the paper's Section 2 running example — two transactions on
//! an initially empty database whose interleavings are proper or improper —
//! then asks the safety verifier about a small locked transaction system.
//!
//! Run with: `cargo run --example quickstart`

use safe_locking::core::display::render_schedule;
use safe_locking::core::{
    is_serializable, Schedule, SerializationGraph, StructuralState, SystemBuilder, TxId,
};
use safe_locking::verifier::{verify_safety, SearchBudget};

fn main() {
    // ------------------------------------------------------------------
    // 1. Proper vs improper schedules (Section 2).
    // ------------------------------------------------------------------
    let mut b = SystemBuilder::new();
    b.tx(1)
        .insert("a")
        .insert("b")
        .write("c")
        .insert("d")
        .finish();
    b.tx(2).read("a").delete("b").insert("c").finish();
    let system = b.build();
    let txs = system.transactions();

    println!("== Section 2: proper vs improper interleavings ==\n");
    let proper = Schedule::interleave(
        txs,
        &[
            TxId(1),
            TxId(1),
            TxId(2),
            TxId(2),
            TxId(2),
            TxId(1),
            TxId(1),
        ],
    )
    .expect("valid interleaving");
    println!("{}", render_schedule(&proper, system.universe()));
    match proper.check_proper(&StructuralState::empty()) {
        Ok(final_state) => println!("proper ✓ — final structural state: {final_state:?}"),
        Err(v) => println!("improper: {v}"),
    }

    let improper = Schedule::interleave(
        txs,
        &[
            TxId(1),
            TxId(1),
            TxId(1),
            TxId(2),
            TxId(2),
            TxId(2),
            TxId(1),
        ],
    )
    .expect("valid interleaving");
    println!("\n{}", render_schedule(&improper, system.universe()));
    match improper.check_proper(&StructuralState::empty()) {
        Ok(_) => println!("proper ✓"),
        Err(v) => println!("improper ✗ — {v}"),
    }

    // Serializability of the proper interleaving.
    let d = SerializationGraph::of(&proper);
    println!("\nD(S) of the proper schedule: {d}");
    println!(
        "serializable: {} (properness and serializability are orthogonal)",
        is_serializable(&proper)
    );

    // ------------------------------------------------------------------
    // 2. Safety of a locked transaction system (Theorem 1, Section 3).
    // ------------------------------------------------------------------
    println!("\n== Safety verification ==\n");

    // Two-phase transactions: safe.
    let mut b = SystemBuilder::new();
    b.exists("x");
    b.exists("y");
    b.tx(1)
        .lx("x")
        .write("x")
        .lx("y")
        .write("y")
        .ux("x")
        .ux("y")
        .finish();
    b.tx(2)
        .lx("y")
        .write("y")
        .lx("x")
        .write("x")
        .ux("y")
        .ux("x")
        .finish();
    let two_phase = b.build();
    let verdict = verify_safety(&two_phase, SearchBudget::default());
    println!(
        "2PL system: safe = {} ({})",
        verdict.is_safe(),
        verdict.stats()
    );

    // Early-release transactions: unsafe, with a counterexample.
    let mut b = SystemBuilder::new();
    b.exists("x");
    b.exists("y");
    b.tx(1)
        .lx("x")
        .write("x")
        .ux("x")
        .lx("y")
        .write("y")
        .ux("y")
        .finish();
    b.tx(2)
        .lx("x")
        .write("x")
        .ux("x")
        .lx("y")
        .write("y")
        .ux("y")
        .finish();
    let early = b.build();
    let verdict = verify_safety(&early, SearchBudget::default());
    println!("early-release system: safe = {}", verdict.is_safe());
    if let Some(witness) = verdict.witness() {
        println!("\ncounterexample (legal, proper, nonserializable):");
        println!("{}", render_schedule(witness, early.universe()));
        let d = SerializationGraph::of(witness);
        println!("cycle: {:?}", d.find_cycle().expect("nonserializable"));
    }
}
