//! Knowledge-base traversals under the DDAG policy (Section 4).
//!
//! Models the paper's motivating application: a part–subpart object graph
//! traversed by concurrent transactions while other transactions insert
//! new parts. Shows the Fig. 3 dynamics — a traversal invalidated by a
//! concurrent edge insertion must abort and restart — and then runs a
//! full simulated workload, verifying the resulting trace is serializable.
//!
//! The DDAG policy is constructed through the [`PolicyRegistry`] and
//! driven entirely through the unified [`PolicyEngine`] API.
//!
//! Run with: `cargo run --example knowledge_base_traversal`

use safe_locking::core::{is_serializable, TxId, Universe};
use safe_locking::graph::DiGraph;
use safe_locking::policies::ddag::DdagViolation;
use safe_locking::policies::{
    AccessIntent, PolicyAction, PolicyConfig, PolicyKind, PolicyRegistry, PolicyResponse,
    PolicyViolation,
};
use safe_locking::sim::{build_adapter, dag_mixed_jobs, layered_dag, run_sim, SimConfig};

fn main() {
    let registry = PolicyRegistry::new();

    // ------------------------------------------------------------------
    // 1. The Fig. 3 walkthrough, on the chain 1 -> 2 -> 3 -> 4.
    // ------------------------------------------------------------------
    println!("== Fig. 3: traversal vs concurrent edge insertion ==\n");
    let mut u = Universe::new();
    let ids = u.entities(["1", "2", "3", "4"]);
    let (n1, n2, n3, n4) = (ids[0], ids[1], ids[2], ids[3]);
    let mut g = DiGraph::new();
    for &n in &ids {
        g.add_node(n).unwrap();
    }
    g.add_edge(n1, n2).unwrap();
    g.add_edge(n2, n3).unwrap();
    g.add_edge(n3, n4).unwrap();
    let mut eng = registry
        .build(PolicyKind::Ddag, &PolicyConfig::dag(u, g))
        .expect("DAG provided");

    let t1 = TxId(1);
    let t2 = TxId(2);
    eng.begin(t1, &AccessIntent::empty()).unwrap();
    eng.request(t1, PolicyAction::Lock(n2)).expect_granted();
    println!("T1 locks node 2 (rule L4: first lock may be any node)");
    eng.request(t1, PolicyAction::Lock(n3)).expect_granted();
    eng.request(t1, PolicyAction::Lock(n4)).expect_granted();
    println!("T1 locks nodes 3 and 4 (rule L5: predecessors locked & one held)");
    eng.request(t1, PolicyAction::Unlock(n3)).expect_granted();
    println!("T1 releases node 3 early (crawling)");
    eng.request(t1, PolicyAction::InsertEdge(n2, n4))
        .expect_granted();
    println!("T1 inserts edge (2, 4) while holding both endpoints (rule L1)");

    eng.begin(t2, &AccessIntent::empty()).unwrap();
    eng.request(t2, PolicyAction::Lock(n3)).expect_granted();
    println!("T2 begins by locking node 3");
    eng.request(t1, PolicyAction::Unlock(n4)).expect_granted();
    println!("T1 releases node 4");
    match eng.request(t2, PolicyAction::Lock(n4)) {
        PolicyResponse::Violation(PolicyViolation::Ddag(DdagViolation::PredecessorsNotLocked(
            ..,
        ))) => println!(
            "T2 cannot lock node 4: node 2 is now a predecessor of 4 in the \
             current graph and T2 never locked it -> T2 must abort and \
             restart from node 2 (exactly the paper's scenario)"
        ),
        other => println!("unexpected: {other:?}"),
    }
    eng.abort(t2);
    eng.finish(t1).unwrap();

    // ------------------------------------------------------------------
    // 2. A simulated knowledge-base workload: traversals + inserts.
    // ------------------------------------------------------------------
    println!("\n== Simulated part–subpart workload ==\n");
    let dag = layered_dag(4, 4, 2, 7);
    let mut adapter = build_adapter(
        &registry,
        PolicyKind::Ddag,
        &PolicyConfig::dag(dag.universe.clone(), dag.graph.clone()),
    )
    .expect("DAG provided");
    let jobs = {
        // Fresh node names are interned through the adapter's universe.
        let mut intern = |name: &str| adapter.intern(name).expect("DDAG interns");
        dag_mixed_jobs(&dag, 40, 2, 0.25, &mut intern, 11)
    };
    let initial = adapter.initial_state();
    let report = run_sim(
        &mut adapter,
        &jobs,
        &SimConfig {
            workers: 4,
            ..Default::default()
        },
    );

    println!("policy            : {}", report.policy);
    println!("jobs committed    : {}", report.committed);
    println!(
        "policy aborts     : {} (plans invalidated by concurrent inserts)",
        report.policy_aborts
    );
    println!("deadlock aborts   : {}", report.deadlock_aborts);
    println!("lock waits        : {}", report.lock_waits);
    println!("makespan (ticks)  : {}", report.makespan);
    println!(
        "throughput        : {:.2} jobs / kilotick",
        report.throughput()
    );
    println!("mean response     : {:.1} ticks", report.mean_response());

    // The whole point: every committed trace is serializable.
    assert!(report.schedule.is_legal(), "trace must be legal");
    assert!(report.schedule.is_proper(&initial), "trace must be proper");
    assert!(
        is_serializable(&report.schedule),
        "DDAG guarantees serializability"
    );
    println!("\ntrace verified: legal ✓  proper ✓  serializable ✓ (Theorem 2)");
}
