//! Prototyping a new locking policy with the safety verifier.
//!
//! Section 7 of the paper suggests the canonical-schedules technique "could
//! be used to analyze other locking policies". This example does exactly
//! that, mechanically: propose a locking discipline for chain traversals,
//! generate the locked transactions it would emit, and let the verifier
//! hunt for canonical counterexamples. A broken draft is caught with an
//! explained counterexample; the repaired draft verifies safe across
//! instances.
//!
//! Run with: `cargo run --example prototype_policy`

use safe_locking::core::display::render_schedule;
use safe_locking::core::{
    explain_nonserializable, LockedTransaction, Step, SystemBuilder, TransactionSystem, TxId,
};
use safe_locking::verifier::{
    find_canonical_witness, verify_safety, CanonicalBudget, SearchBudget,
};

/// Draft 1 — "lock, use, release, hop": each node locked only while used.
/// (This is the discipline rule L5's "presently holding a predecessor"
/// clause exists to forbid.)
fn draft1_chain_walk(id: u32, chain: &[safe_locking::core::EntityId]) -> LockedTransaction {
    let mut steps = Vec::new();
    for &n in chain {
        steps.push(Step::lock_exclusive(n));
        steps.push(Step::read(n));
        steps.push(Step::write(n));
        steps.push(Step::unlock_exclusive(n));
    }
    LockedTransaction::new(TxId(id), steps)
}

/// Draft 2 — "crab walk": hold the current node while locking the next,
/// then release the previous (lock coupling — the repaired discipline).
fn draft2_chain_walk(id: u32, chain: &[safe_locking::core::EntityId]) -> LockedTransaction {
    let mut steps = Vec::new();
    for (i, &n) in chain.iter().enumerate() {
        steps.push(Step::lock_exclusive(n));
        if i > 0 {
            steps.push(Step::unlock_exclusive(chain[i - 1]));
        }
        steps.push(Step::read(n));
        steps.push(Step::write(n));
    }
    if let Some(&last) = chain.last() {
        steps.push(Step::unlock_exclusive(last));
    }
    LockedTransaction::new(TxId(id), steps)
}

fn chain_system(
    walk: impl Fn(u32, &[safe_locking::core::EntityId]) -> LockedTransaction,
) -> TransactionSystem {
    let mut b = SystemBuilder::new();
    let chain: Vec<_> = ["n1", "n2", "n3"].iter().map(|n| b.exists(n)).collect();
    let t1 = walk(1, &chain);
    let t2 = walk(2, &chain);
    b.add_transaction(t1);
    b.add_transaction(t2);
    b.build()
}

fn main() {
    println!("== Prototyping a traversal discipline with the verifier ==\n");

    // Draft 1: lock/use/release per node.
    let system = chain_system(draft1_chain_walk);
    println!("draft 1 — \"lock, use, release, hop\":");
    let verdict = verify_safety(&system, SearchBudget::default());
    match verdict.witness() {
        Some(w) => {
            println!("UNSAFE. counterexample schedule:");
            println!("{}", render_schedule(w, system.universe()));
            println!("{}\n", explain_nonserializable(w, system.universe()));
        }
        None => println!("safe?! (unexpected)\n"),
    }
    // Theorem 1 gives the canonical form of the same failure.
    let outcome = find_canonical_witness(&system, CanonicalBudget::default());
    if let Some(w) = outcome.witness() {
        println!("canonical diagnosis (Theorem 1): {w}");
        println!(
            "-> the culprit transaction unlocks a node and only later locks {},\n   which another transaction has already locked AND released.\n",
            system.universe().name(w.a_star)
        );
    }

    // Draft 2: crab walk (lock coupling).
    let system = chain_system(draft2_chain_walk);
    println!("draft 2 — \"crab walk\" (hold current while locking next):");
    let verdict = verify_safety(&system, SearchBudget::default());
    println!(
        "verifier verdict: {} ({})",
        if verdict.is_safe() { "SAFE" } else { "UNSAFE" },
        verdict.stats()
    );
    assert!(verdict.is_safe());
    let outcome = find_canonical_witness(&system, CanonicalBudget::default());
    assert!(outcome.witness().is_none());
    println!("canonical search agrees: no canonical witness exists.");
    println!(
        "\nnote: the crab walk is exactly what rule L5's \"presently holding a\npredecessor\" clause enforces on DAGs — the prototype rediscovered the\nDDAG policy's key ingredient, with the verifier doing the proof-hunting."
    );

    // Scale the check: both drafts across several chain lengths.
    println!("\nchain-length sweep (draft 2 stays safe):");
    for len in 2..=4 {
        let mut b = SystemBuilder::new();
        let chain: Vec<_> = (0..len).map(|i| b.exists(&format!("c{i}"))).collect();
        b.add_transaction(draft2_chain_walk(1, &chain));
        b.add_transaction(draft2_chain_walk(2, &chain));
        let system = b.build();
        let verdict = verify_safety(&system, SearchBudget::default());
        println!(
            "  chain length {len}: safe = {} ({})",
            verdict.is_safe(),
            verdict.stats()
        );
        assert!(verdict.is_safe());
    }
}
