//! The policy catalog: every registered locking policy on one workload.
//!
//! One loop, zero hand-wiring: each [`PolicyKind`] the registry exposes —
//! the four safe policies of the paper *and* the mutant negative controls
//! — is built through the [`PolicyRegistry`], run on a shared hot-set
//! contention workload, and its trace verified post-hoc. Safe policies
//! must produce serializable traces (Theorems 2–4); the mutants
//! demonstrate why the registry tracks safety per kind.
//!
//! Also shows registry extensibility: a custom policy registered by name
//! drops into the same harness.
//!
//! Run with: `cargo run --example policy_catalog`

use safe_locking::core::{is_serializable, EntityId};
use safe_locking::policies::{PolicyConfig, PolicyKind, PolicyRegistry, TwoPhaseEngine};
use safe_locking::sim::{
    build_adapter, hot_cold_jobs, layered_dag, planner_for, run_sim, EngineAdapter, SimConfig,
};

fn main() {
    let registry = PolicyRegistry::new();
    println!("registered policies: {}\n", registry.names().join(", "));

    let pool: Vec<EntityId> = (0..32).map(EntityId).collect();
    let jobs = hot_cold_jobs(&pool, 60, 3, 4, 0.75, 13);
    let config = SimConfig {
        workers: 6,
        ..Default::default()
    };

    println!(
        "{:<20} {:>5} {:>9} {:>7} {:>8} {:>10} {:>13}",
        "policy", "safe", "committed", "waits", "aborts", "makespan", "serializable"
    );
    for &kind in registry.kinds() {
        // DAG policies get a graph config and traversal jobs over its
        // nodes instead of the flat pool (the pool ids are not graph
        // nodes) — one DAG build feeds both, so they cannot drift.
        let (policy_config, kind_jobs) = if kind.needs_graph() {
            let dag = layered_dag(4, 5, 2, 13);
            let jobs = safe_locking::sim::dag_access_jobs(&dag, 60, 2, 13);
            (PolicyConfig::dag(dag.universe, dag.graph), jobs)
        } else {
            (PolicyConfig::flat(pool.clone()), jobs.clone())
        };
        let mut adapter = build_adapter(&registry, kind, &policy_config).expect("buildable kind");
        let initial = adapter.initial_state();
        let report = run_sim(&mut adapter, &kind_jobs, &config);
        let serializable = is_serializable(&report.schedule);
        println!(
            "{:<20} {:>5} {:>9} {:>7} {:>8} {:>10} {:>13}",
            report.policy,
            kind.is_safe(),
            report.committed,
            report.lock_waits,
            report.policy_aborts + report.deadlock_aborts,
            report.makespan,
            serializable,
        );
        assert!(report.schedule.is_legal());
        assert!(report.schedule.is_proper(&initial));
        if kind.is_safe() {
            assert!(
                serializable,
                "{}: safe policies must emit serializable traces",
                kind.name()
            );
        }
        // Under the standard planners the mutants behave like their base
        // policy (the plans never exploit the ablated rule); E7 and the
        // conformance suite script the interleavings that do.
    }

    // ------------------------------------------------------------------
    // Registry extensibility: a custom policy by name.
    // ------------------------------------------------------------------
    println!("\n== custom policy via PolicyRegistry::register ==\n");
    let mut registry = PolicyRegistry::new();
    registry.register("my-lock-manager", |_config| {
        Ok(Box::new(TwoPhaseEngine::new()))
    });
    let engine = registry
        .build_named("my-lock-manager", &PolicyConfig::default())
        .expect("just registered");
    // Any engine drops into the generic adapter with a planner of choice.
    let mut adapter = EngineAdapter::new(engine, planner_for(PolicyKind::TwoPhase), pool.clone());
    let report = run_sim(&mut adapter, &jobs, &config);
    println!(
        "custom '{}' committed {} jobs, trace serializable: {}",
        report.policy,
        report.committed,
        is_serializable(&report.schedule)
    );
    assert!(is_serializable(&report.schedule));
}
