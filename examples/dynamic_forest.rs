//! The dynamic tree policy (Section 6): the concurrency control builds the
//! database forest itself.
//!
//! Reproduces the Fig. 5 walkthrough — the forest grows as transactions
//! declare their access sets (rules DT0–DT2) and shrinks again once nodes
//! are no longer needed (rule DT3) — then runs a simulated workload and
//! verifies serializability (Theorem 4).
//!
//! Run with: `cargo run --example dynamic_forest`

use safe_locking::core::{is_serializable, DataOp, EntityId, TxId};
use safe_locking::policies::dtr::DtrEngine;
use safe_locking::sim::{run_sim, uniform_jobs, DtrAdapter, SimConfig};
use std::collections::BTreeMap;

fn access() -> Vec<DataOp> {
    vec![DataOp::Read, DataOp::Write]
}

fn show_forest(eng: &DtrEngine) {
    let f = eng.forest();
    print!("forest:");
    for root in f.roots() {
        print!(" tree(root {root}): {{");
        let mut first = true;
        for n in f.tree_nodes(root) {
            if !first {
                print!(", ");
            }
            match f.parent(n) {
                Some(p) => print!("{n}<-{p}"),
                None => print!("{n}"),
            }
            first = false;
        }
        print!("}}");
    }
    println!();
}

fn main() {
    // ------------------------------------------------------------------
    // 1. The Fig. 5 walkthrough.
    // ------------------------------------------------------------------
    println!("== Fig. 5: the database forest under DT0–DT3 ==\n");
    let mut eng = DtrEngine::new();
    println!("DT0: the forest starts empty");
    show_forest(&eng);

    // T1 arrives accessing {1, 2, 3}: they are connected into one tree.
    let (e1, e2, e3, e4) = (EntityId(1), EntityId(2), EntityId(3), EntityId(4));
    let ops1 = BTreeMap::from([(e1, access()), (e2, access()), (e3, access())]);
    let plan1 = eng.begin(TxId(1), &ops1).unwrap();
    println!("\nDT2: T1 declares A(T1) = {{e1, e2, e3}}; forest becomes (Fig. 5a):");
    show_forest(&eng);
    println!("T1's precomputed tree-locked plan: {} steps", plan1.len());
    eng.step(TxId(1)).unwrap(); // T1 takes its first lock.

    // T2 arrives accessing {3, 4}: node 4 is added and joined (Fig. 5b).
    let ops2 = BTreeMap::from([(e3, access()), (e4, access())]);
    eng.begin(TxId(2), &ops2).unwrap();
    println!("\nDT1+DT2: T2 declares A(T2) = {{e3, e4}}; node e4 joined (Fig. 5b):");
    show_forest(&eng);

    // While transactions are active, e4 cannot be garbage collected.
    println!(
        "\nDT3 check while T2 is active: delete(e4) -> {:?}",
        eng.check_delete(e4).unwrap_err()
    );

    // Run both to completion (T1 first — it holds the root).
    eng.run_to_end(TxId(1)).unwrap();
    eng.finish(TxId(1)).unwrap();
    eng.run_to_end(TxId(2)).unwrap();
    eng.finish(TxId(2)).unwrap();

    // Now e4 may go: every remaining (zero) transaction stays tree-locked.
    eng.delete(e4).unwrap();
    println!("\nDT3 after T2 finished: e4 deleted from the forest:");
    show_forest(&eng);

    // ------------------------------------------------------------------
    // 2. Simulation under the DTR policy.
    // ------------------------------------------------------------------
    println!("\n== Simulated workload under DTR ==\n");
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    let jobs = uniform_jobs(&pool, 30, 3, 21);
    let mut adapter = DtrAdapter::new(pool);
    let initial = adapter.initial_state();
    let report = run_sim(
        &mut adapter,
        &jobs,
        &SimConfig {
            workers: 4,
            ..Default::default()
        },
    );

    println!("jobs committed   : {}", report.committed);
    println!("lock waits       : {}", report.lock_waits);
    println!("makespan (ticks) : {}", report.makespan);
    println!(
        "throughput       : {:.2} jobs / kilotick",
        report.throughput()
    );
    println!(
        "forest size now  : {} nodes",
        adapter.engine().forest().len()
    );

    assert!(report.schedule.is_legal());
    assert!(report.schedule.is_proper(&initial));
    assert!(is_serializable(&report.schedule));
    println!("\ntrace verified: legal ✓  proper ✓  serializable ✓ (Theorem 4)");
}
