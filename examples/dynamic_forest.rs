//! The dynamic tree policy (Section 6): the concurrency control builds the
//! database forest itself.
//!
//! Reproduces the Fig. 5 walkthrough — the forest grows as transactions
//! declare their access sets (rules DT0–DT2) and shrinks again once nodes
//! are no longer needed (rule DT3) — then runs a simulated workload and
//! verifies serializability (Theorem 4). The policy is built through the
//! [`PolicyRegistry`] and driven through the unified [`PolicyEngine`]
//! trait: `begin` hands back the precomputed tree-locked plan (DT2), the
//! forest is read through the trait's introspection, and the DT3
//! garbage-collection check reaches the concrete engine through the
//! downcast hatch.
//!
//! Run with: `cargo run --example dynamic_forest`

use safe_locking::core::{is_serializable, EntityId, TxId};
use safe_locking::graph::Forest;
use safe_locking::policies::dtr::DtrEngine;
use safe_locking::policies::{
    AccessIntent, PolicyAction, PolicyConfig, PolicyEngine, PolicyKind, PolicyRegistry,
};
use safe_locking::sim::{build_adapter, run_sim, uniform_jobs, SimConfig};

fn show_forest(f: &Forest) {
    print!("forest:");
    for root in f.roots() {
        print!(" tree(root {root}): {{");
        let mut first = true;
        for n in f.tree_nodes(root) {
            if !first {
                print!(", ");
            }
            match f.parent(n) {
                Some(p) => print!("{n}<-{p}"),
                None => print!("{n}"),
            }
            first = false;
        }
        print!("}}");
    }
    println!();
}

/// Drives `tx` through its remaining precomputed plan actions.
fn run_plan(eng: &mut Box<dyn PolicyEngine>, tx: TxId, actions: &[PolicyAction]) {
    for &a in actions {
        eng.request(tx, a).expect_granted();
    }
}

fn main() {
    let registry = PolicyRegistry::new();

    // ------------------------------------------------------------------
    // 1. The Fig. 5 walkthrough.
    // ------------------------------------------------------------------
    println!("== Fig. 5: the database forest under DT0–DT3 ==\n");
    let mut eng = registry
        .build(PolicyKind::Dtr, &PolicyConfig::default())
        .expect("flat kind");
    println!("DT0: the forest starts empty");
    show_forest(eng.forest().expect("DTR maintains a forest"));

    // T1 arrives accessing {1, 2, 3}: they are connected into one tree.
    let (e1, e2, e3, e4) = (EntityId(1), EntityId(2), EntityId(3), EntityId(4));
    let plan1 = eng
        .begin(TxId(1), &AccessIntent::access([e1, e2, e3]))
        .unwrap()
        .expect("DT2 precomputes the plan");
    println!("\nDT2: T1 declares A(T1) = {{e1, e2, e3}}; forest becomes (Fig. 5a):");
    let forest = eng.forest().expect("DTR maintains a forest");
    show_forest(forest);
    assert_eq!(forest.roots().len(), 1);
    println!("T1's precomputed tree-locked plan: {} actions", plan1.len());
    eng.request(TxId(1), plan1[0]).expect_granted(); // T1 takes its first lock.

    // T2 arrives accessing {3, 4}: node 4 is added and joined (Fig. 5b).
    let plan2 = eng
        .begin(TxId(2), &AccessIntent::access([e3, e4]))
        .unwrap()
        .expect("DT2 precomputes the plan");
    println!("\nDT1+DT2: T2 declares A(T2) = {{e3, e4}}; node e4 joined (Fig. 5b):");
    let forest = eng.forest().expect("DTR maintains a forest");
    show_forest(forest);
    assert_eq!(forest.roots().len(), 1, "one tree after joining");

    // While transactions are active, e4 cannot be garbage collected. The
    // DT3 check is DTR-specific introspection: downcast to the engine.
    let dtr: &DtrEngine = eng.as_any().downcast_ref().expect("DTR engine");
    println!(
        "\nDT3 check while T2 is active: delete(e4) -> {:?}",
        dtr.check_delete(e4).unwrap_err()
    );

    // Run both to completion (T1 first — it holds the root).
    run_plan(&mut eng, TxId(1), &plan1[1..]);
    eng.finish(TxId(1)).unwrap();
    run_plan(&mut eng, TxId(2), &plan2);
    eng.finish(TxId(2)).unwrap();

    // Now e4 may go: every remaining (zero) transaction stays tree-locked.
    let dtr: &mut DtrEngine = eng.as_any_mut().downcast_mut().expect("DTR engine");
    dtr.delete(e4).unwrap();
    println!("\nDT3 after T2 finished: e4 deleted from the forest:");
    show_forest(eng.forest().expect("DTR maintains a forest"));

    // ------------------------------------------------------------------
    // 2. Simulation under the DTR policy.
    // ------------------------------------------------------------------
    println!("\n== Simulated workload under DTR ==\n");
    let pool: Vec<EntityId> = (0..16).map(EntityId).collect();
    let jobs = uniform_jobs(&pool, 30, 3, 21);
    let mut adapter =
        build_adapter(&registry, PolicyKind::Dtr, &PolicyConfig::flat(pool)).expect("flat kind");
    let initial = adapter.initial_state();
    let report = run_sim(
        &mut adapter,
        &jobs,
        &SimConfig {
            workers: 4,
            ..Default::default()
        },
    );

    println!("jobs committed   : {}", report.committed);
    println!("lock waits       : {}", report.lock_waits);
    println!("makespan (ticks) : {}", report.makespan);
    println!(
        "throughput       : {:.2} jobs / kilotick",
        report.throughput()
    );
    println!(
        "forest size now  : {} nodes",
        adapter.engine().forest().expect("DTR").len()
    );

    assert!(report.schedule.is_legal());
    assert!(report.schedule.is_proper(&initial));
    assert!(is_serializable(&report.schedule));
    println!("\ntrace verified: legal ✓  proper ✓  serializable ✓ (Theorem 4)");
}
