//! Long-lived transactions under altruistic locking (Section 5).
//!
//! The scenario altruistic locking was designed for \[SGMS94\]: one long
//! scan holds up a stream of short transactions under 2PL, while under
//! altruistic locking the short transactions run *in the wake* of the scan
//! on the items it has already donated. Reproduces the Fig. 4 walkthrough,
//! then compares 2PL vs altruistic response times in simulation.
//!
//! Run with: `cargo run --example long_lived_transactions`

use safe_locking::core::{is_serializable, EntityId, TxId};
use safe_locking::policies::altruistic::{AltruisticEngine, AltruisticViolation};
use safe_locking::sim::{long_short_jobs, run_sim, AltruisticAdapter, SimConfig, TwoPhaseAdapter};

fn main() {
    // ------------------------------------------------------------------
    // 1. The Fig. 4 walkthrough.
    // ------------------------------------------------------------------
    println!("== Fig. 4: entering and leaving a wake ==\n");
    let mut eng = AltruisticEngine::new();
    let (t1, t2) = (TxId(1), TxId(2));
    let (i1, i2, i3, i4) = (EntityId(1), EntityId(2), EntityId(3), EntityId(4));

    eng.begin(t1).unwrap();
    eng.begin(t2).unwrap();
    eng.lock(t1, i1).unwrap();
    eng.access(t1, i1).unwrap();
    eng.lock(t1, i2).unwrap();
    eng.unlock(t1, i1).unwrap();
    println!("T1 donates item 1 before reaching its locked point");
    eng.lock(t2, i1).unwrap();
    println!("T2 locks item 1 -> T2 is now in the wake of T1");
    assert!(eng.in_wake_of(t2, t1));
    match eng.check_lock(t2, i4) {
        Err(AltruisticViolation::OutsideWake { .. }) => println!(
            "T2 may not lock item 4: while in T1's wake it may only lock \
             items T1 has donated (rule AL2)"
        ),
        other => println!("unexpected: {other:?}"),
    }
    eng.lock(t1, i3).unwrap();
    eng.declare_locked_point(t1).unwrap();
    println!("T1 reaches its locked point (locks item 3): the wake dissolves");
    assert!(!eng.in_wake_of(t2, t1));
    eng.lock(t2, i4).unwrap();
    println!("T2 locks item 4 freely now");
    eng.finish(t1).unwrap();
    eng.finish(t2).unwrap();

    // ------------------------------------------------------------------
    // 2. Simulation: one long scan + many short transactions.
    // ------------------------------------------------------------------
    println!("\n== Simulation: long scan + short transactions ==\n");
    let pool: Vec<EntityId> = (0..24).map(EntityId).collect();
    let jobs = long_short_jobs(&pool, 16, 24, 2, 3);
    let config = SimConfig {
        workers: 6,
        ..Default::default()
    };

    println!(
        "{:<12} {:>9} {:>10} {:>12} {:>10} {:>8}",
        "policy", "committed", "waits", "mean resp", "makespan", "aborts"
    );
    for policy in ["2PL", "altruistic"] {
        let (report, initial) = match policy {
            "2PL" => {
                let mut a = TwoPhaseAdapter::new(pool.clone());
                let init = a.initial_state();
                (run_sim(&mut a, &jobs, &config), init)
            }
            _ => {
                let mut a = AltruisticAdapter::new(pool.clone());
                let init = a.initial_state();
                (run_sim(&mut a, &jobs, &config), init)
            }
        };
        println!(
            "{:<12} {:>9} {:>10} {:>12.1} {:>10} {:>8}",
            report.policy,
            report.committed,
            report.lock_waits,
            report.mean_response(),
            report.makespan,
            report.policy_aborts + report.deadlock_aborts,
        );
        assert!(report.schedule.is_legal());
        assert!(report.schedule.is_proper(&initial));
        assert!(
            is_serializable(&report.schedule),
            "{}: trace must be serializable",
            report.policy
        );
    }
    println!("\nboth traces verified serializable ✓ (2PL classic; altruistic by Theorem 3)");
    println!("altruistic lets short transactions follow in the scan's wake instead of");
    println!("queueing behind it — compare the wait counts and response times above.");
}
