//! Long-lived transactions under altruistic locking (Section 5).
//!
//! The scenario altruistic locking was designed for \[SGMS94\]: one long
//! scan holds up a stream of short transactions under 2PL, while under
//! altruistic locking the short transactions run *in the wake* of the scan
//! on the items it has already donated. Reproduces the Fig. 4 walkthrough
//! through the unified [`PolicyEngine`] API, then compares 2PL vs
//! altruistic response times in simulation — both policies selected by
//! [`PolicyKind`] and built through the [`PolicyRegistry`].
//!
//! Run with: `cargo run --example long_lived_transactions`

use safe_locking::core::{is_serializable, EntityId, TxId};
use safe_locking::policies::altruistic::{AltruisticEngine, AltruisticViolation};
use safe_locking::policies::{
    AccessIntent, PolicyAction, PolicyConfig, PolicyKind, PolicyRegistry, PolicyResponse,
    PolicyViolation,
};
use safe_locking::sim::{build_adapter, long_short_jobs, run_sim, SimConfig};

fn main() {
    let registry = PolicyRegistry::new();

    // ------------------------------------------------------------------
    // 1. The Fig. 4 walkthrough.
    // ------------------------------------------------------------------
    println!("== Fig. 4: entering and leaving a wake ==\n");
    let mut eng = registry
        .build(PolicyKind::Altruistic, &PolicyConfig::default())
        .expect("flat kind");
    let (t1, t2) = (TxId(1), TxId(2));
    let (i1, i2, i3, i4) = (EntityId(1), EntityId(2), EntityId(3), EntityId(4));
    // Wake membership is altruistic-specific introspection: reach the
    // concrete engine through the trait's downcast hatch.
    let in_wake = |eng: &dyn safe_locking::policies::PolicyEngine, ti: TxId, tj: TxId| {
        eng.as_any()
            .downcast_ref::<AltruisticEngine>()
            .expect("altruistic engine")
            .in_wake_of(ti, tj)
    };

    eng.begin(t1, &AccessIntent::empty()).unwrap();
    eng.begin(t2, &AccessIntent::empty()).unwrap();
    eng.request(t1, PolicyAction::Lock(i1)).expect_granted();
    eng.request(t1, PolicyAction::Access(i1)).expect_granted();
    eng.request(t1, PolicyAction::Lock(i2)).expect_granted();
    eng.request(t1, PolicyAction::Unlock(i1)).expect_granted();
    println!("T1 donates item 1 before reaching its locked point");
    eng.request(t2, PolicyAction::Lock(i1)).expect_granted();
    println!("T2 locks item 1 -> T2 is now in the wake of T1");
    assert!(in_wake(&eng, t2, t1));
    match eng.request(t2, PolicyAction::Lock(i4)) {
        PolicyResponse::Violation(PolicyViolation::Altruistic(
            AltruisticViolation::OutsideWake { .. },
        )) => println!(
            "T2 may not lock item 4: while in T1's wake it may only lock \
             items T1 has donated (rule AL2)"
        ),
        other => println!("unexpected: {other:?}"),
    }
    eng.request(t1, PolicyAction::Lock(i3)).expect_granted();
    eng.request(t1, PolicyAction::LockedPoint).expect_granted();
    println!("T1 reaches its locked point (locks item 3): the wake dissolves");
    assert!(!in_wake(&eng, t2, t1));
    eng.request(t2, PolicyAction::Lock(i4)).expect_granted();
    println!("T2 locks item 4 freely now");
    eng.finish(t1).unwrap();
    eng.finish(t2).unwrap();

    // ------------------------------------------------------------------
    // 2. Simulation: one long scan + many short transactions.
    // ------------------------------------------------------------------
    println!("\n== Simulation: long scan + short transactions ==\n");
    let pool: Vec<EntityId> = (0..24).map(EntityId).collect();
    let jobs = long_short_jobs(&pool, 16, 24, 2, 3);
    let config = SimConfig {
        workers: 6,
        ..Default::default()
    };

    println!(
        "{:<12} {:>9} {:>10} {:>12} {:>10} {:>8}",
        "policy", "committed", "waits", "mean resp", "makespan", "aborts"
    );
    for kind in [PolicyKind::TwoPhase, PolicyKind::Altruistic] {
        let mut adapter =
            build_adapter(&registry, kind, &PolicyConfig::flat(pool.clone())).expect("flat kind");
        let initial = adapter.initial_state();
        let report = run_sim(&mut adapter, &jobs, &config);
        println!(
            "{:<12} {:>9} {:>10} {:>12.1} {:>10} {:>8}",
            report.policy,
            report.committed,
            report.lock_waits,
            report.mean_response(),
            report.makespan,
            report.policy_aborts + report.deadlock_aborts,
        );
        assert!(report.schedule.is_legal());
        assert!(report.schedule.is_proper(&initial));
        assert!(
            is_serializable(&report.schedule),
            "{}: trace must be serializable",
            report.policy
        );
    }
    println!("\nboth traces verified serializable ✓ (2PL classic; altruistic by Theorem 3)");
    println!("altruistic lets short transactions follow in the scan's wake instead of");
    println!("queueing behind it — compare the wait counts and response times above.");
}
