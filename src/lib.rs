//! # safe-locking — *Safe Locking Policies for Dynamic Databases* in Rust
//!
//! A full reproduction of Chaudhri & Hadzilacos, PODS 1995 (JCSS 57,
//! 260–271, 1998): the dynamic-database model, the canonical
//! nonserializable schedules theorem (Theorem 1), the three locking
//! policies it proves safe (DDAG, altruistic, dynamic tree), a safety
//! verifier built on the theorem, and a concurrency-control simulator for
//! policy comparison.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name. See the component crates for details:
//!
//! * [`core`] (`slp-core`) — model, schedules, serializability, Theorem 1
//!   certificates;
//! * [`graph`] (`slp-graph`) — rooted DAGs, dominators, forests;
//! * [`policies`] (`slp-policies`) — 2PL, tree, DDAG, altruistic, DTR;
//! * [`verifier`] (`slp-verifier`) — exhaustive & canonical safety search;
//! * [`sim`] (`slp-sim`) — discrete-event simulator and workloads;
//! * [`runtime`] (`slp-runtime`) — multi-threaded transaction service with
//!   trace capture for offline re-verification;
//! * [`durability`] (`slp-durability`) — segmented write-ahead log,
//!   checkpoints, and crash recovery for the runtime's traces.
//!
//! ## Quick start
//!
//! ```
//! use safe_locking::core::{SystemBuilder, TxId};
//! use safe_locking::verifier::{verify_safety, SearchBudget};
//!
//! // Two transactions that release a lock early (not two-phase):
//! let mut b = SystemBuilder::new();
//! b.exists("x");
//! b.exists("y");
//! b.tx(1).lx("x").write("x").ux("x").lx("y").write("y").ux("y").finish();
//! b.tx(2).lx("x").write("x").ux("x").lx("y").write("y").ux("y").finish();
//! let system = b.build();
//!
//! // The verifier finds a legal, proper, nonserializable schedule.
//! let verdict = verify_safety(&system, SearchBudget::default());
//! assert!(verdict.is_unsafe());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use slp_core as core;
pub use slp_durability as durability;
pub use slp_graph as graph;
pub use slp_policies as policies;
pub use slp_runtime as runtime;
pub use slp_sim as sim;
pub use slp_verifier as verifier;
