//! Trait-conformance suite for the unified policy API: every
//! [`PolicyKind`] the registry exposes runs through shared seeded
//! workloads — including the large-contention regime — and every emitted
//! trace must be legal and proper; the safe policies' traces must also be
//! serializable (Theorems 2–4). The mutant kinds serve as negative
//! controls: scripted interleavings show each one admits a legal, proper,
//! **non**serializable execution that its safe base policy refuses at a
//! typed violation.

use safe_locking::core::{
    is_serializable, EntityId, Schedule, ScheduledStep, StructuralState, TxId, Universe,
};
use safe_locking::graph::DiGraph;
use safe_locking::policies::altruistic::AltruisticViolation;
use safe_locking::policies::ddag::DdagViolation;
use safe_locking::policies::{
    AccessIntent, PolicyAction, PolicyConfig, PolicyEngine, PolicyKind, PolicyRegistry,
    PolicyResponse, PolicyViolation,
};
use safe_locking::sim::{
    build_adapter, dag_access_jobs, deep_dag_jobs, hot_cold_jobs, layered_dag, long_short_jobs,
    run_sim, uniform_jobs, Job, SimConfig,
};

/// One shared workload: jobs plus the config to run them under.
struct Workload {
    name: &'static str,
    jobs: Vec<Job>,
    workers: usize,
}

/// The shared flat-pool workloads (seeded, deterministic): a uniform mix,
/// the long-scan regime, and the large-contention hot set.
fn flat_workloads(pool: &[EntityId], seed: u64) -> Vec<Workload> {
    vec![
        Workload {
            name: "uniform",
            jobs: uniform_jobs(pool, 30, 3, seed),
            workers: 4,
        },
        Workload {
            name: "long-short",
            jobs: long_short_jobs(pool, 12, 20, 2, seed),
            workers: 6,
        },
        Workload {
            name: "large-contention",
            jobs: hot_cold_jobs(pool, 80, 3, 4, 0.8, seed),
            workers: 8,
        },
    ]
}

#[test]
fn every_registered_policy_emits_legal_proper_traces() {
    let registry = PolicyRegistry::new();
    for &kind in registry.kinds() {
        for seed in [3u64, 17] {
            let (config, workloads) = if kind.needs_graph() {
                let dag = layered_dag(5, 4, 2, seed);
                let workloads = vec![
                    Workload {
                        name: "traversals",
                        jobs: dag_access_jobs(&dag, 30, 2, seed),
                        workers: 4,
                    },
                    Workload {
                        name: "large-contention",
                        jobs: deep_dag_jobs(&dag, 50, 2, seed + 1),
                        workers: 8,
                    },
                ];
                (
                    PolicyConfig::dag(dag.universe.clone(), dag.graph.clone()),
                    workloads,
                )
            } else {
                let pool: Vec<EntityId> = (0..24).map(EntityId).collect();
                (
                    PolicyConfig::flat(pool.clone()),
                    flat_workloads(&pool, seed),
                )
            };
            for w in workloads {
                let mut adapter = build_adapter(&registry, kind, &config).expect("buildable kind");
                let initial = adapter.initial_state();
                let report = run_sim(
                    &mut adapter,
                    &w.jobs,
                    &SimConfig {
                        workers: w.workers,
                        ..Default::default()
                    },
                );
                let ctx = format!("{} / {} / seed {}", kind.name(), w.name, seed);
                assert!(!report.timed_out, "{ctx}: timed out");
                assert_eq!(report.rejected, 0, "{ctx}: well-formed jobs rejected");
                assert_eq!(report.committed, w.jobs.len(), "{ctx}: lost jobs");
                assert!(report.schedule.is_legal(), "{ctx}: illegal trace");
                assert!(report.schedule.is_proper(&initial), "{ctx}: improper trace");
                if kind.is_safe() {
                    assert!(
                        is_serializable(&report.schedule),
                        "{ctx}: NONSERIALIZABLE trace from a safe policy"
                    );
                }
            }
        }
    }
}

#[test]
fn large_contention_workloads_actually_contend() {
    // The point of the E9d-style workload: heavy lock traffic. Guard the
    // generator against accidentally becoming conflict-free.
    let registry = PolicyRegistry::new();
    let pool: Vec<EntityId> = (0..24).map(EntityId).collect();
    let jobs = hot_cold_jobs(&pool, 80, 3, 4, 0.8, 5);
    for kind in [
        PolicyKind::TwoPhase,
        PolicyKind::Altruistic,
        PolicyKind::Dtr,
    ] {
        let mut adapter =
            build_adapter(&registry, kind, &PolicyConfig::flat(pool.clone())).expect("flat kind");
        let report = run_sim(
            &mut adapter,
            &jobs,
            &SimConfig {
                workers: 8,
                ..Default::default()
            },
        );
        assert!(
            report.lock_waits > 50,
            "{}: expected heavy contention, saw {} waits",
            kind.name(),
            report.lock_waits
        );
    }
}

// ---------------------------------------------------------------------
// Negative controls: each mutant admits a nonserializable execution its
// safe base refuses.
// ---------------------------------------------------------------------

/// Scripts one action: grants it and records the steps into `trace`.
fn granted(eng: &mut Box<dyn PolicyEngine>, tx: TxId, action: PolicyAction, trace: &mut Schedule) {
    for s in eng.request(tx, action).expect_granted() {
        trace.push(ScheduledStep::new(tx, s));
    }
}

fn finished(eng: &mut Box<dyn PolicyEngine>, tx: TxId, trace: &mut Schedule) {
    for s in eng.finish(tx).expect("active transaction") {
        trace.push(ScheduledStep::new(tx, s));
    }
}

/// The chain `r -> a -> b` as a DDAG config.
fn chain_config() -> (PolicyConfig, EntityId, EntityId) {
    let mut u = Universe::new();
    let ids = u.entities(["r", "a", "b"]);
    let mut g = DiGraph::new();
    for &n in &ids {
        g.add_node(n).unwrap();
    }
    g.add_edge(ids[0], ids[1]).unwrap();
    g.add_edge(ids[1], ids[2]).unwrap();
    (PolicyConfig::dag(u, g), ids[1], ids[2])
}

/// The diamond `r -> {a, b} -> j` as a DDAG config.
fn diamond_config() -> (PolicyConfig, [EntityId; 4]) {
    let mut u = Universe::new();
    let ids = u.entities(["r", "a", "b", "j"]);
    let mut g = DiGraph::new();
    for &n in &ids {
        g.add_node(n).unwrap();
    }
    g.add_edge(ids[0], ids[1]).unwrap();
    g.add_edge(ids[0], ids[2]).unwrap();
    g.add_edge(ids[1], ids[3]).unwrap();
    g.add_edge(ids[2], ids[3]).unwrap();
    (PolicyConfig::dag(u, g), [ids[0], ids[1], ids[2], ids[3]])
}

#[test]
fn mutant_no_held_predecessor_admits_what_safe_ddag_refuses() {
    let registry = PolicyRegistry::new();
    let (t1, t2) = (TxId(1), TxId(2));

    // Mutant: two lock-use-release crawls overtake each other.
    let (config, a, b) = chain_config();
    let mut eng = registry
        .build(PolicyKind::DdagNoHeldPredecessor, &config)
        .unwrap();
    let mut trace = Schedule::empty();
    eng.begin(t1, &AccessIntent::empty()).unwrap();
    eng.begin(t2, &AccessIntent::empty()).unwrap();
    for (tx, n) in [(t1, a), (t2, a), (t2, b), (t1, b)] {
        granted(&mut eng, tx, PolicyAction::Lock(n), &mut trace);
        granted(&mut eng, tx, PolicyAction::Access(n), &mut trace);
        granted(&mut eng, tx, PolicyAction::Unlock(n), &mut trace);
    }
    finished(&mut eng, t1, &mut trace);
    finished(&mut eng, t2, &mut trace);
    let initial: StructuralState = eng.structural_entities().unwrap().into_iter().collect();
    assert!(trace.is_legal());
    assert!(trace.is_proper(&initial));
    assert!(
        !is_serializable(&trace),
        "the L5b mutant must admit a nonserializable execution"
    );

    // Safe DDAG: the pivotal lock is a typed L5 violation.
    let (config, a, b) = chain_config();
    let mut eng = registry.build(PolicyKind::Ddag, &config).unwrap();
    let mut trace = Schedule::empty();
    eng.begin(t1, &AccessIntent::empty()).unwrap();
    eng.begin(t2, &AccessIntent::empty()).unwrap();
    for (tx, n) in [(t1, a), (t2, a)] {
        granted(&mut eng, tx, PolicyAction::Lock(n), &mut trace);
        granted(&mut eng, tx, PolicyAction::Access(n), &mut trace);
        granted(&mut eng, tx, PolicyAction::Unlock(n), &mut trace);
    }
    match eng.request(t2, PolicyAction::Lock(b)) {
        PolicyResponse::Violation(PolicyViolation::Ddag(DdagViolation::NoHeldPredecessor(
            tx,
            n,
        ))) => {
            assert_eq!((tx, n), (t2, b));
        }
        other => panic!("safe DDAG must refuse on L5b, got {other:?}"),
    }
}

#[test]
fn mutant_no_all_predecessors_admits_what_safe_ddag_refuses() {
    let registry = PolicyRegistry::new();
    let (t1, t2) = (TxId(1), TxId(2));

    // Mutant: two opposite shoulder-crawls through the diamond serialize
    // r as T1 -> T2 but j as T2 -> T1.
    let (config, [r, a, b, j]) = diamond_config();
    let mut eng = registry
        .build(PolicyKind::DdagNoAllPredecessors, &config)
        .unwrap();
    let mut trace = Schedule::empty();
    eng.begin(t1, &AccessIntent::empty()).unwrap();
    eng.begin(t2, &AccessIntent::empty()).unwrap();
    // T1: r -> a, releasing r early.
    granted(&mut eng, t1, PolicyAction::Lock(r), &mut trace);
    granted(&mut eng, t1, PolicyAction::Access(r), &mut trace);
    granted(&mut eng, t1, PolicyAction::Lock(a), &mut trace);
    granted(&mut eng, t1, PolicyAction::Unlock(r), &mut trace);
    // T2: r -> b -> j (j locked while holding only predecessor b).
    granted(&mut eng, t2, PolicyAction::Lock(r), &mut trace);
    granted(&mut eng, t2, PolicyAction::Access(r), &mut trace);
    granted(&mut eng, t2, PolicyAction::Lock(b), &mut trace);
    granted(&mut eng, t2, PolicyAction::Unlock(r), &mut trace);
    granted(&mut eng, t2, PolicyAction::Lock(j), &mut trace);
    granted(&mut eng, t2, PolicyAction::Access(j), &mut trace);
    granted(&mut eng, t2, PolicyAction::Unlock(j), &mut trace);
    // T1 follows into j while holding only predecessor a.
    granted(&mut eng, t1, PolicyAction::Lock(j), &mut trace);
    granted(&mut eng, t1, PolicyAction::Access(j), &mut trace);
    finished(&mut eng, t1, &mut trace);
    finished(&mut eng, t2, &mut trace);
    let initial: StructuralState = eng.structural_entities().unwrap().into_iter().collect();
    assert!(trace.is_legal());
    assert!(trace.is_proper(&initial));
    assert!(
        !is_serializable(&trace),
        "the L5a mutant must admit a nonserializable execution"
    );

    // Safe DDAG: locking j while b was never locked is a typed violation.
    let (config, [r, a, _b, j]) = diamond_config();
    let mut eng = registry.build(PolicyKind::Ddag, &config).unwrap();
    let mut trace = Schedule::empty();
    eng.begin(t1, &AccessIntent::empty()).unwrap();
    granted(&mut eng, t1, PolicyAction::Lock(r), &mut trace);
    granted(&mut eng, t1, PolicyAction::Lock(a), &mut trace);
    match eng.request(t1, PolicyAction::Lock(j)) {
        PolicyResponse::Violation(PolicyViolation::Ddag(DdagViolation::PredecessorsNotLocked(
            tx,
            n,
        ))) => {
            assert_eq!((tx, n), (t1, j));
        }
        other => panic!("safe DDAG must refuse on L5a, got {other:?}"),
    }
}

#[test]
fn mutant_no_wake_rule_admits_what_safe_altruistic_refuses() {
    let registry = PolicyRegistry::new();
    let (t1, t2) = (TxId(1), TxId(2));
    let (x, y) = (EntityId(0), EntityId(1));
    let config = PolicyConfig::flat(vec![x, y]);

    let script = |eng: &mut Box<dyn PolicyEngine>| -> (Schedule, PolicyResponse) {
        let mut trace = Schedule::empty();
        eng.begin(t1, &AccessIntent::empty()).unwrap();
        eng.begin(t2, &AccessIntent::empty()).unwrap();
        // T1 donates x before its locked point; T2 takes it (enters the
        // wake), then tries the non-donated y.
        granted(eng, t1, PolicyAction::Lock(x), &mut trace);
        granted(eng, t1, PolicyAction::Access(x), &mut trace);
        granted(eng, t1, PolicyAction::Unlock(x), &mut trace);
        granted(eng, t2, PolicyAction::Lock(x), &mut trace);
        granted(eng, t2, PolicyAction::Access(x), &mut trace);
        let pivotal = eng.request(t2, PolicyAction::Lock(y));
        (trace, pivotal)
    };

    // Mutant: the wake escape is granted and completes nonserializably.
    let mut eng = registry
        .build(PolicyKind::AltruisticNoWake, &config)
        .unwrap();
    let (mut trace, pivotal) = script(&mut eng);
    for s in pivotal.expect_granted() {
        trace.push(ScheduledStep::new(t2, s));
    }
    granted(&mut eng, t2, PolicyAction::Access(y), &mut trace);
    finished(&mut eng, t2, &mut trace);
    granted(&mut eng, t1, PolicyAction::Lock(y), &mut trace);
    granted(&mut eng, t1, PolicyAction::Access(y), &mut trace);
    finished(&mut eng, t1, &mut trace);
    let initial = StructuralState::from_entities([x, y]);
    assert!(trace.is_legal());
    assert!(trace.is_proper(&initial));
    assert!(
        !is_serializable(&trace),
        "the AL2 mutant must admit a nonserializable execution"
    );

    // Safe altruistic: the same request is a typed AL2 violation.
    let mut eng = registry.build(PolicyKind::Altruistic, &config).unwrap();
    let (_, pivotal) = script(&mut eng);
    match pivotal {
        PolicyResponse::Violation(PolicyViolation::Altruistic(
            AltruisticViolation::OutsideWake { tx, wake_of, item },
        )) => {
            assert_eq!((tx, wake_of, item), (t2, t1, y));
        }
        other => panic!("safe altruistic must refuse on AL2, got {other:?}"),
    }
}
