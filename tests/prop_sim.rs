//! Property-based end-to-end simulation tests: for arbitrary seeded
//! workloads, MPLs, and latency models, every sound policy's trace is
//! legal, proper, and serializable, and the engine's accounting is
//! consistent. Every adapter is constructed through the policy registry.

use proptest::prelude::*;
use safe_locking::core::{is_serializable, EntityId};
use safe_locking::policies::{PolicyConfig, PolicyKind, PolicyRegistry};
use safe_locking::sim::{
    build_adapter, dag_access_jobs, layered_dag, run_sim, uniform_jobs, LatencyModel,
    PolicyInstance, SimConfig,
};

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (1usize..6, 1u64..4, 1u64..8).prop_map(|(workers, lock, data)| SimConfig {
        workers,
        latency: LatencyModel {
            lock,
            unlock: lock,
            data,
            restart_backoff: 10,
        },
        max_ticks: 1_000_000,
    })
}

fn flat(kind: PolicyKind, pool: &[EntityId]) -> PolicyInstance {
    build_adapter(
        &PolicyRegistry::new(),
        kind,
        &PolicyConfig::flat(pool.to_vec()),
    )
    .expect("flat kind")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn two_phase_and_altruistic_always_serializable(
        seed in 0u64..10_000,
        config in arb_config(),
        pool_size in 4u32..12,
        per_job in 1usize..4,
    ) {
        let pool: Vec<EntityId> = (0..pool_size).map(EntityId).collect();
        let jobs = uniform_jobs(&pool, 12, per_job, seed);

        let mut a = flat(PolicyKind::TwoPhase, &pool);
        let initial = a.initial_state();
        let report = run_sim(&mut a, &jobs, &config);
        prop_assert!(!report.timed_out);
        prop_assert_eq!(report.committed, 12);
        prop_assert!(report.schedule.is_legal());
        prop_assert!(report.schedule.is_proper(&initial));
        prop_assert!(is_serializable(&report.schedule));
        prop_assert_eq!(
            report.attempts,
            report.committed + report.policy_aborts + report.deadlock_aborts + report.rejected
        );
        prop_assert_eq!(report.rejected, 0, "well-formed jobs are never rejected");

        let mut a = flat(PolicyKind::Altruistic, &pool);
        let initial = a.initial_state();
        let report = run_sim(&mut a, &jobs, &config);
        prop_assert!(!report.timed_out);
        prop_assert_eq!(report.committed, 12);
        prop_assert!(report.schedule.is_legal());
        prop_assert!(report.schedule.is_proper(&initial));
        prop_assert!(is_serializable(&report.schedule));
    }

    #[test]
    fn dtr_always_serializable_and_deadlock_free(
        seed in 0u64..10_000,
        config in arb_config(),
        pool_size in 4u32..12,
    ) {
        let pool: Vec<EntityId> = (0..pool_size).map(EntityId).collect();
        let jobs = uniform_jobs(&pool, 12, 3, seed);
        let mut a = flat(PolicyKind::Dtr, &pool);
        let initial = a.initial_state();
        let report = run_sim(&mut a, &jobs, &config);
        prop_assert!(!report.timed_out);
        prop_assert_eq!(report.committed, 12);
        prop_assert_eq!(report.deadlock_aborts, 0, "tree locking is deadlock-free");
        prop_assert!(report.schedule.is_legal());
        prop_assert!(report.schedule.is_proper(&initial));
        prop_assert!(is_serializable(&report.schedule));
    }

    #[test]
    fn ddag_always_serializable(
        seed in 0u64..10_000,
        config in arb_config(),
        layers in 2usize..5,
        width in 2usize..4,
    ) {
        let dag = layered_dag(layers, width, 2, seed);
        let jobs = dag_access_jobs(&dag, 12, 2, seed);
        let mut a = build_adapter(
            &PolicyRegistry::new(),
            PolicyKind::Ddag,
            &PolicyConfig::dag(dag.universe.clone(), dag.graph.clone()),
        )
        .expect("DAG provided");
        let initial = a.initial_state();
        let report = run_sim(&mut a, &jobs, &config);
        prop_assert!(!report.timed_out);
        prop_assert_eq!(report.committed, 12);
        prop_assert!(report.schedule.is_legal());
        prop_assert!(report.schedule.is_proper(&initial));
        prop_assert!(is_serializable(&report.schedule));
    }

    #[test]
    fn simulation_is_deterministic(
        seed in 0u64..10_000,
        workers in 1usize..5,
    ) {
        let pool: Vec<EntityId> = (0..8).map(EntityId).collect();
        let jobs = uniform_jobs(&pool, 10, 3, seed);
        let config = SimConfig { workers, ..Default::default() };
        let run = |jobs: &[safe_locking::sim::Job]| {
            let mut a = flat(PolicyKind::TwoPhase, &pool);
            run_sim(&mut a, jobs, &config)
        };
        let r1 = run(&jobs);
        let r2 = run(&jobs);
        prop_assert_eq!(r1.schedule, r2.schedule);
        prop_assert_eq!(r1.makespan, r2.makespan);
        prop_assert_eq!(r1.committed, r2.committed);
        prop_assert_eq!(r1.lock_waits, r2.lock_waits);
    }
}
