//! Integration tests locking in every paper artifact reproduction.
//!
//! Each experiment module of `slp-bench` asserts its own claims
//! internally; these tests run them end-to-end so `cargo test` regenerates
//! and re-validates the entire evaluation section (E9's full sweeps are
//! exercised by the `paper-experiments` binary and `cargo bench`; here we
//! run a reduced version for time).

use slp_bench::experiments;

#[test]
fn e0_section2_interleavings() {
    let report = experiments::e0::run();
    assert!(report.contains("proper: true"));
    assert!(report.contains("improper"));
}

#[test]
fn e1_fig1_canonical_graph_shapes() {
    let report = experiments::e1::run();
    assert!(report.contains("simple path"));
    assert!(report.contains("sinks: [T3, T4]"));
}

#[test]
fn e2_fig2_chordless_cycle_counterexample() {
    let report = experiments::e2::run();
    assert!(report.contains("serializable ✗"));
    assert!(report.contains("unsafe = true"));
}

#[test]
fn e3_fig3_ddag_walkthrough() {
    let report = experiments::e3::run();
    assert!(report.contains("restart from node 2"));
}

#[test]
fn e4_fig4_altruistic_walkthrough() {
    let report = experiments::e4::run();
    assert!(report.contains("wake"));
    assert!(report.contains("serializable ✓"));
}

#[test]
fn e5_fig5_dtr_walkthrough() {
    let report = experiments::e5::run();
    assert!(report.contains("DT0"));
    assert!(report.contains("Fig. 5b"));
    assert!(report.contains("joins them"));
}

#[test]
fn e6_theorem1_agreement_reduced() {
    // The full E6 is minutes of work; a reduced batch keeps `cargo test`
    // fast while still cross-validating the theorem.
    use slp_verifier::GenParams;
    let row = experiments::e6::agreement_batch(GenParams::default(), 0..15);
    assert_eq!(row.disagreements, 0);
    assert_eq!(row.systems, 15);
}

#[test]
fn e7_soundness_and_mutants_reduced() {
    for row in experiments::e7::soundness_table(0..2) {
        assert_eq!(row.serializable, row.runs, "{}", row.policy);
    }
    // The deterministic mutant scenarios must stay nonserializable.
    let traces = [
        experiments::e7::ddag_no_held_predecessor_scenario(),
        experiments::e7::ddag_no_all_predecessors_scenario(),
        experiments::e7::altruistic_no_wake_scenario(),
    ];
    for trace in traces {
        assert!(trace.is_legal());
        assert!(!slp_core::is_serializable(&trace));
    }
}

#[test]
fn e8_lemma_invariance_reduced() {
    let stats = experiments::e8::lemma_sweep(0..12);
    assert!(stats.schedules > 0);
    assert_eq!(stats.violations, 0);
}

#[test]
fn e9_performance_shapes_reduced() {
    // One MPL point per policy: everything commits, nothing times out.
    for (_, reports) in experiments::e9::mpl_sweep(&[4], 99) {
        for r in reports {
            assert!(!r.timed_out);
            assert_eq!(r.committed, 60, "{}", r.policy);
        }
    }
    // The altruistic-vs-2PL makespan gap at one scan length.
    let rows = experiments::e9::scan_length_sweep(&[16], 99);
    let (_, r_2pl, r_alt) = &rows[0];
    assert!(
        r_alt.makespan < r_2pl.makespan,
        "altruistic ({}) must finish before 2PL ({})",
        r_alt.makespan,
        r_2pl.makespan
    );
}
