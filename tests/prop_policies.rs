//! Property-based tests for the policy engines and generators.

use proptest::prelude::*;
use safe_locking::core::{
    is_serializable, DataOp, EntityId, LockedTransaction, Schedule, ScheduledStep, Step,
    Transaction, TxId,
};
use safe_locking::graph::Forest;
use safe_locking::policies::ddag::DdagEngine;
use safe_locking::policies::{is_tree_locked, mutants, tree_lock_plan, two_phase};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn arb_transaction(entities: u32, len: usize) -> impl Strategy<Value = Transaction> {
    prop::collection::vec(
        (
            prop_oneof![
                Just(DataOp::Read),
                Just(DataOp::Write),
                Just(DataOp::Insert),
                Just(DataOp::Delete),
            ],
            0..entities,
        ),
        1..len,
    )
    .prop_map(|ops| {
        Transaction::new(
            TxId(1),
            ops.into_iter()
                .map(|(op, e)| Step::new(op, EntityId(e)))
                .collect(),
        )
    })
}

/// A random forest built by attaching each node under a random earlier
/// node (or as a root).
fn arb_forest(n: u32) -> impl Strategy<Value = Forest> {
    prop::collection::vec(0u32..=u32::MAX, n as usize).prop_map(move |choices| {
        let mut f = Forest::new();
        for (i, &c) in choices.iter().enumerate() {
            let node = EntityId(i as u32);
            if i == 0 || c % (i as u32 + 1) == 0 {
                f.add_root(node).unwrap();
            } else {
                let parent = EntityId(c % i as u32);
                f.add_child(parent, node).unwrap();
            }
        }
        f
    })
}

// ---------------------------------------------------------------------
// 2PL and short-lock generators
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn strict_2pl_output_is_always_compliant(t in arb_transaction(6, 12)) {
        let locked = two_phase::lock_strict(&t);
        prop_assert!(two_phase::complies(&locked));
        prop_assert_eq!(locked.unlocked().steps, t.steps);
    }

    #[test]
    fn conservative_2pl_output_is_always_compliant(t in arb_transaction(6, 12)) {
        let locked = two_phase::lock_conservative(&t);
        prop_assert!(two_phase::complies(&locked));
        prop_assert_eq!(locked.unlocked().steps, t.steps);
        // All locks precede all data steps.
        let first_data = locked.steps.iter().position(Step::is_data);
        let last_lock = locked.steps.iter().rposition(Step::is_lock);
        if let (Some(d), Some(l)) = (first_data, last_lock) {
            prop_assert!(l < d);
        }
    }

    #[test]
    fn short_locks_are_well_formed_and_lock_once(t in arb_transaction(6, 12)) {
        let locked = mutants::lock_short(&t);
        prop_assert!(locked.validate().is_ok());
        prop_assert_eq!(locked.unlocked().steps, t.steps);
    }

    #[test]
    fn two_2pl_transactions_always_form_a_safe_system(
        ta in arb_transaction(4, 8),
        tb in arb_transaction(4, 8),
    ) {
        // Regardless of access patterns, 2PL-locked pairs are safe
        // (Theorem 1, condition 1). Verified exhaustively.
        use safe_locking::core::{StructuralState, TransactionSystem, Universe};
        use safe_locking::verifier::{verify_safety, SearchBudget};
        let mut universe = Universe::new();
        for i in 0..4 {
            universe.entity(&format!("e{i}"));
        }
        let a = two_phase::lock_strict(&ta);
        let mut b_steps = tb.steps.clone();
        b_steps.truncate(8);
        let b = two_phase::lock_conservative(&Transaction::new(TxId(2), b_steps));
        let system = TransactionSystem::new(
            universe,
            StructuralState::from_entities((0..4).map(EntityId)),
            vec![LockedTransaction::new(TxId(1), a.steps), b],
        );
        let verdict = verify_safety(&system, SearchBudget { max_states: 300_000, ..Default::default() });
        // Either proven safe or the budget ran out — never unsafe.
        prop_assert!(!verdict.is_unsafe(), "2PL pair found unsafe!");
    }
}

// ---------------------------------------------------------------------
// Tree-lock planner
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn tree_plans_are_tree_locked_and_well_formed(
        f in arb_forest(12),
        raw_targets in prop::collection::btree_set(0u32..12, 1..5),
    ) {
        // Restrict targets to one tree (the planner requires it).
        let targets: Vec<EntityId> = {
            let first_root = f.root_of(EntityId(*raw_targets.iter().next().unwrap()));
            raw_targets
                .iter()
                .map(|&i| EntityId(i))
                .filter(|&e| f.root_of(e) == first_root)
                .collect()
        };
        let ops: BTreeMap<EntityId, Vec<DataOp>> =
            targets.iter().map(|&e| (e, vec![DataOp::Read, DataOp::Write])).collect();
        let plan = tree_lock_plan(&f, &ops).expect("single-tree targets plan");
        prop_assert!(is_tree_locked(&plan, &f).is_ok());
        let lt = LockedTransaction::new(TxId(1), plan.clone());
        prop_assert!(lt.validate().is_ok());
        // Every target's ops appear exactly once.
        for &t in &targets {
            prop_assert_eq!(plan.iter().filter(|s| **s == Step::read(t)).count(), 1);
            prop_assert_eq!(plan.iter().filter(|s| **s == Step::write(t)).count(), 1);
        }
        // Locks are balanced: every lock has a matching unlock.
        let locks = plan.iter().filter(|s| s.is_lock()).count();
        let unlocks = plan.iter().filter(|s| s.is_unlock()).count();
        prop_assert_eq!(locks, unlocks);
    }
}

// ---------------------------------------------------------------------
// DDAG engine: serial crawls on random layered DAGs
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn serial_ddag_crawls_satisfy_lemma3(
        (layers, width, seed) in (2usize..4, 1usize..4, 0u64..500),
    ) {
        use safe_locking::sim::layered_dag;
        use safe_locking::graph::dominators;
        let d = layered_dag(layers, width, 2, seed);
        let mut eng = DdagEngine::new(d.universe.clone(), d.graph.clone());
        let tx = TxId(1);
        eng.begin(tx).unwrap();
        // Crawl from the root in topological order (a maximal traversal).
        let topo = safe_locking::graph::dag::topological_sort(&d.graph).unwrap();
        let mut locked = Vec::new();
        let mut steps: Vec<Step> = Vec::new();
        for &n in &topo {
            steps.push(eng.lock(tx, n).expect("topological crawl is always allowed"));
            locked.push(n);
            // Lemma 3(a): everything locked so far is dominated by the
            // first lock (the root here).
            prop_assert!(dominators::dominates_all(&d.graph, d.root, locked[0], locked.iter()));
        }
        steps.extend(eng.finish(tx).unwrap());
        let lt = LockedTransaction::new(tx, steps);
        prop_assert!(lt.validate().is_ok());
    }

    #[test]
    fn serial_policy_execution_traces_are_serializable(
        (layers, width, seed) in (2usize..4, 2usize..4, 0u64..200),
    ) {
        // Two DDAG transactions run serially: trace must be serializable
        // and the serialization order must match execution order.
        use safe_locking::sim::layered_dag;
        let d = layered_dag(layers, width, 2, seed);
        let mut eng = DdagEngine::new(d.universe.clone(), d.graph.clone());
        let mut trace = Schedule::empty();
        for t in 1..=2u32 {
            let tx = TxId(t);
            eng.begin(tx).unwrap();
            let topo = safe_locking::graph::dag::topological_sort(eng.graph()).unwrap();
            for n in topo {
                trace.push(ScheduledStep::new(tx, eng.lock(tx, n).unwrap()));
                for s in eng.access(tx, n).unwrap() {
                    trace.push(ScheduledStep::new(tx, s));
                }
            }
            for s in eng.finish(tx).unwrap() {
                trace.push(ScheduledStep::new(tx, s));
            }
        }
        prop_assert!(trace.is_legal());
        prop_assert!(is_serializable(&trace));
    }
}
