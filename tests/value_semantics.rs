//! Why safety matters, observably: executing a legal, proper, but
//! nonserializable schedule over the *value* state produces final values
//! that **no serial execution** can produce — while every schedule a sound
//! policy admits matches some serial outcome.
//!
//! Execution semantics used here (a simple register machine): each
//! transaction has one register; `(R e)` loads `e`'s value into the
//! register; `(W e)` stores `register + <transaction constant>` into `e`.
//! This is the classic "swap-and-add" anomaly pair.

use safe_locking::core::{
    is_serializable, DataOp, EntityId, Operation, Schedule, TxId, ValueState,
};
use safe_locking::core::{Step, Transaction};
use safe_locking::policies::mutants::lock_short;
use std::collections::HashMap;

/// Executes a schedule under the register semantics; `addend(tx)` is the
/// per-transaction constant added on every write.
fn execute(schedule: &Schedule, addend: &dyn Fn(TxId) -> i64) -> ValueState {
    let mut values = ValueState::new();
    let mut registers: HashMap<TxId, i64> = HashMap::new();
    for s in schedule.steps() {
        match s.step.op {
            Operation::Data(DataOp::Read) => {
                registers.insert(s.tx, values.read(s.step.entity));
            }
            Operation::Data(DataOp::Write) => {
                let r = registers.get(&s.tx).copied().unwrap_or(0);
                values.write(s.step.entity, r + addend(s.tx));
            }
            Operation::Data(DataOp::Insert) => values.write(s.step.entity, 0),
            Operation::Data(DataOp::Delete) => values.clear(s.step.entity),
            _ => {}
        }
    }
    values
}

fn transfer_pair() -> (
    Vec<safe_locking::core::LockedTransaction>,
    EntityId,
    EntityId,
) {
    let (x, y) = (EntityId(0), EntityId(1));
    // T1: y := x + 10;  T2: x := y + 100. Short locks (non-2PL) so the
    // dangerous interleaving is legal.
    let t1 = lock_short(&Transaction::new(
        TxId(1),
        vec![Step::read(x), Step::write(y)],
    ));
    let t2 = lock_short(&Transaction::new(
        TxId(2),
        vec![Step::read(y), Step::write(x)],
    ));
    (vec![t1, t2], x, y)
}

fn addend(tx: TxId) -> i64 {
    match tx {
        TxId(1) => 10,
        _ => 100,
    }
}

#[test]
fn nonserializable_schedule_produces_impossible_values() {
    let (txs, x, y) = transfer_pair();
    // Interleave reads before writes: T1 reads x, T2 reads y, then both write.
    // Short-locked T1 = [LS x, R x, US x, LX y, W y, UX y]; same shape for T2.
    let order = [
        TxId(1),
        TxId(1),
        TxId(1), // T1 reads x = 0
        TxId(2),
        TxId(2),
        TxId(2), // T2 reads y = 0
        TxId(1),
        TxId(1),
        TxId(1), // T1 writes y = 10
        TxId(2),
        TxId(2),
        TxId(2), // T2 writes x = 100
    ];
    let s = Schedule::interleave(&txs, &order).unwrap();
    assert!(s.is_legal(), "short locks make this interleaving legal");
    assert!(!is_serializable(&s), "and it is not serializable");

    let anomalous = execute(&s, &addend);
    assert_eq!((anomalous.read(x), anomalous.read(y)), (100, 10));

    // Every serial execution gives something else.
    let serial_12 = execute(&Schedule::serial(&txs), &addend);
    let serial_21 = execute(
        &Schedule::serial([&txs[1].clone(), &txs[0].clone()]),
        &addend,
    );
    assert_eq!((serial_12.read(x), serial_12.read(y)), (110, 10));
    assert_eq!((serial_21.read(x), serial_21.read(y)), (100, 110));
    assert_ne!(
        (anomalous.read(x), anomalous.read(y)),
        (serial_12.read(x), serial_12.read(y))
    );
    assert_ne!(
        (anomalous.read(x), anomalous.read(y)),
        (serial_21.read(x), serial_21.read(y))
    );
}

#[test]
fn serializable_schedules_match_a_serial_outcome() {
    let (txs, x, y) = transfer_pair();
    // A serializable interleaving: T1 completes its read AND write before
    // T2 touches anything it conflicts with.
    let order = [
        TxId(1),
        TxId(1),
        TxId(1),
        TxId(1),
        TxId(1),
        TxId(1), // all of T1
        TxId(2),
        TxId(2),
        TxId(2),
        TxId(2),
        TxId(2),
        TxId(2), // all of T2
    ];
    let s = Schedule::interleave(&txs, &order).unwrap();
    assert!(is_serializable(&s));
    let result = execute(&s, &addend);
    let serial_12 = execute(&Schedule::serial(&txs), &addend);
    assert_eq!(
        (result.read(x), result.read(y)),
        (serial_12.read(x), serial_12.read(y))
    );
}

#[test]
fn two_phase_locking_prevents_the_anomaly() {
    use safe_locking::core::{StructuralState, TransactionSystem, Universe};
    use safe_locking::policies::two_phase;
    use safe_locking::verifier::{verify_safety, SearchBudget};
    let (x, y) = (EntityId(0), EntityId(1));
    let t1 = two_phase::lock_strict(&Transaction::new(
        TxId(1),
        vec![Step::read(x), Step::write(y)],
    ));
    let t2 = two_phase::lock_strict(&Transaction::new(
        TxId(2),
        vec![Step::read(y), Step::write(x)],
    ));
    let mut u = Universe::new();
    u.entity("x");
    u.entity("y");
    let system = TransactionSystem::new(u, StructuralState::from_entities([x, y]), vec![t1, t2]);
    // No legal proper schedule of the 2PL pair is nonserializable, so the
    // anomalous outcome is unreachable.
    assert!(verify_safety(&system, SearchBudget::default()).is_safe());
}

#[test]
fn conflict_equivalent_schedules_produce_identical_values() {
    // Soundness of the conflict model itself: any serializable schedule's
    // execution equals its equivalent serial schedule's execution.
    use safe_locking::core::equivalent_serial_schedule;
    let (txs, x, y) = transfer_pair();
    // Enumerate a few legal interleavings and compare outcomes.
    let orders: Vec<Vec<TxId>> = vec![
        vec![TxId(1); 6]
            .into_iter()
            .chain(vec![TxId(2); 6])
            .collect(),
        vec![
            TxId(1),
            TxId(2),
            TxId(1),
            TxId(2),
            TxId(1),
            TxId(2),
            TxId(1),
            TxId(2),
            TxId(1),
            TxId(2),
            TxId(1),
            TxId(2),
        ],
    ];
    for order in orders {
        let Ok(s) = Schedule::interleave(&txs, &order) else {
            continue;
        };
        if !s.is_legal() {
            continue;
        }
        if let Some(serial) = equivalent_serial_schedule(&s) {
            let a = execute(&s, &addend);
            let b = execute(&serial, &addend);
            assert_eq!((a.read(x), a.read(y)), (b.read(x), b.read(y)));
        }
    }
}
