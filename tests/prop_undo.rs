//! Property tests for the reversible step API behind the verifier's
//! apply/undo DFS: any legal-and-proper apply sequence, undone in reverse,
//! must restore the `ScheduleSimulator` to equality at every unwind depth
//! (lock-table holder order and structural-state representation included,
//! since the DFS relies on `Eq`-exact restoration for memo soundness).

use proptest::prelude::*;
use safe_locking::core::{
    DataOp, EntityId, LockMode, Operation, Schedule, ScheduleSimulator, ScheduledStep, Step,
    StructuralState, TxId, UndoToken,
};

fn arb_op() -> impl Strategy<Value = Operation> {
    prop_oneof![
        prop_oneof![
            Just(DataOp::Read),
            Just(DataOp::Write),
            Just(DataOp::Insert),
            Just(DataOp::Delete),
        ]
        .prop_map(Operation::Data),
        prop_oneof![Just(LockMode::Shared), Just(LockMode::Exclusive)].prop_map(Operation::Lock),
        prop_oneof![Just(LockMode::Shared), Just(LockMode::Exclusive)].prop_map(Operation::Unlock),
    ]
}

fn arb_requests(entities: u32, txs: u32, len: usize) -> impl Strategy<Value = Vec<ScheduledStep>> {
    prop::collection::vec(
        (
            (1..=txs).prop_map(TxId),
            arb_op(),
            (0..entities).prop_map(EntityId),
        )
            .prop_map(|(tx, op, entity)| ScheduledStep::new(tx, Step { op, entity })),
        0..len,
    )
}

/// Filters random step requests through the simulator, keeping the legal
/// and proper ones — the same construction the DFS performs.
fn applied_trace(
    requests: Vec<ScheduledStep>,
    g0: &StructuralState,
) -> (ScheduleSimulator, Vec<(ScheduledStep, UndoToken)>) {
    let mut sim = ScheduleSimulator::new(g0.clone());
    let mut trace = Vec::new();
    for s in requests {
        if let Ok(token) = sim.apply_undoable(s.tx, &s.step) {
            trace.push((s, token));
        }
    }
    (sim, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn undo_in_reverse_restores_simulator_equality(
        requests in arb_requests(5, 4, 80),
        initial in prop::collection::hash_set(0u32..5, 0..5),
    ) {
        let g0 = StructuralState::from_entities(initial.into_iter().map(EntityId));
        let mut replay = ScheduleSimulator::new(g0.clone());
        let (mut sim, trace) = applied_trace(requests, &g0);

        // Snapshot the simulator after each prefix by replaying.
        let mut snapshots = vec![replay.clone()];
        for (s, _) in &trace {
            replay.apply(s.tx, &s.step).expect("trace step was applicable");
            snapshots.push(replay.clone());
        }
        prop_assert_eq!(&sim, snapshots.last().unwrap());

        // Undo in reverse: equality must hold at *every* depth.
        for (i, (_, token)) in trace.iter().enumerate().rev() {
            sim.undo(*token);
            prop_assert_eq!(&sim, &snapshots[i], "undo diverged at depth {}", i);
        }
        prop_assert_eq!(sim.applied(), 0);
        prop_assert_eq!(sim.structural_state(), &g0);
    }

    #[test]
    fn undone_steps_can_be_reapplied_identically(
        requests in arb_requests(4, 3, 60),
        initial in prop::collection::hash_set(0u32..4, 0..4),
    ) {
        // The DFS interleaves apply and undo arbitrarily along the search
        // tree; after undoing a suffix, re-applying the same steps must
        // succeed and land in the same state.
        let g0 = StructuralState::from_entities(initial.into_iter().map(EntityId));
        let (sim_full, trace) = applied_trace(requests, &g0);
        let keep = trace.len() / 2;

        let mut sim = ScheduleSimulator::new(g0.clone());
        let mut tokens = Vec::new();
        for (s, _) in &trace {
            tokens.push(sim.apply_undoable(s.tx, &s.step).expect("replayable"));
        }
        for token in tokens.drain(keep..).rev() {
            sim.undo(token);
        }
        for (s, _) in &trace[keep..] {
            sim.apply(s.tx, &s.step).expect("reapplicable after undo");
        }
        prop_assert_eq!(&sim, &sim_full);
    }

    #[test]
    fn schedule_pop_inverts_push(steps in arb_requests(4, 3, 40)) {
        let mut schedule = Schedule::empty();
        let mut lens = vec![0usize];
        for &s in &steps {
            schedule.push(s);
            lens.push(schedule.len());
        }
        for &s in steps.iter().rev() {
            prop_assert_eq!(schedule.pop(), Some(s));
        }
        prop_assert_eq!(schedule.pop(), None);
        prop_assert!(schedule.is_empty());
    }
}
