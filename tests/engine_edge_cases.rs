//! Negative-path and lifecycle edge cases across the policy engines —
//! the error surfaces a caller integrating these engines must handle.

use safe_locking::core::{DataOp, EntityId, TxId};
use safe_locking::graph::DiGraph;
use safe_locking::policies::altruistic::{AltruisticEngine, AltruisticViolation};
use safe_locking::policies::ddag::{DdagEngine, DdagViolation};
use safe_locking::policies::dtr::{DtrEngine, DtrViolation};
use std::collections::BTreeMap;

fn access() -> Vec<DataOp> {
    vec![DataOp::Read, DataOp::Write]
}

#[test]
fn ddag_operations_on_unknown_transactions_fail() {
    let mut u = safe_locking::core::Universe::new();
    let n = u.entity("n");
    let mut g = DiGraph::new();
    g.add_node(n).unwrap();
    let mut eng = DdagEngine::new(u, g);
    assert_eq!(
        eng.check_lock(TxId(9), n),
        Err(DdagViolation::UnknownTransaction(TxId(9)))
    );
    assert_eq!(
        eng.access(TxId(9), n),
        Err(DdagViolation::UnknownTransaction(TxId(9)))
    );
    assert!(eng.finish(TxId(9)).is_err());
    // Abort of an unknown transaction is a no-op, not a panic.
    assert!(eng.abort(TxId(9)).is_empty());
}

#[test]
fn ddag_finish_releases_everything_and_retires() {
    let mut u = safe_locking::core::Universe::new();
    let ids = u.entities(["a", "b"]);
    let mut g = DiGraph::new();
    for &n in &ids {
        g.add_node(n).unwrap();
    }
    g.add_edge(ids[0], ids[1]).unwrap();
    let mut eng = DdagEngine::new(u, g);
    eng.begin(TxId(1)).unwrap();
    eng.lock(TxId(1), ids[0]).unwrap();
    eng.lock(TxId(1), ids[1]).unwrap();
    let unlocks = eng.finish(TxId(1)).unwrap();
    assert_eq!(unlocks.len(), 2);
    // Finished transactions are gone.
    assert!(eng.finish(TxId(1)).is_err());
    assert_eq!(eng.lock_holder(ids[0]), None);
    // Another transaction can begin under the same id (restart pattern).
    assert!(eng.begin(TxId(1)).is_ok());
}

#[test]
fn ddag_insert_requires_lock_first() {
    let mut u = safe_locking::core::Universe::new();
    let ids = u.entities(["a"]);
    let mut g = DiGraph::new();
    g.add_node(ids[0]).unwrap();
    let mut eng = DdagEngine::new(u, g);
    let fresh = eng.intern("fresh");
    eng.begin(TxId(1)).unwrap();
    assert_eq!(
        eng.insert_node(TxId(1), fresh),
        Err(DdagViolation::NotHolding(TxId(1), fresh))
    );
    eng.lock(TxId(1), fresh).unwrap(); // L2: lockable pre-insert
    assert!(eng.insert_node(TxId(1), fresh).is_ok());
    // Double insert fails.
    assert_eq!(
        eng.insert_node(TxId(1), fresh),
        Err(DdagViolation::NodeExists(fresh))
    );
}

#[test]
fn ddag_edge_errors() {
    let mut u = safe_locking::core::Universe::new();
    let ids = u.entities(["a", "b", "c"]);
    let mut g = DiGraph::new();
    for &n in &ids {
        g.add_node(n).unwrap();
    }
    g.add_edge(ids[0], ids[1]).unwrap();
    let mut eng = DdagEngine::new(u, g);
    eng.begin(TxId(1)).unwrap();
    eng.lock(TxId(1), ids[0]).unwrap();
    // Endpoint not held.
    assert_eq!(
        eng.insert_edge(TxId(1), ids[0], ids[1]),
        Err(DdagViolation::NotHolding(TxId(1), ids[1]))
    );
    eng.lock(TxId(1), ids[1]).unwrap();
    // Edge already exists.
    assert_eq!(
        eng.insert_edge(TxId(1), ids[0], ids[1]),
        Err(DdagViolation::EdgeExists(ids[0], ids[1]))
    );
    // Deleting a non-existent edge.
    assert_eq!(
        eng.delete_edge(TxId(1), ids[1], ids[0]),
        Err(DdagViolation::NoSuchEdge(ids[1], ids[0]))
    );
    // Edge entity lookups.
    assert!(eng.edge_entity(ids[0], ids[1]).is_some());
    assert!(eng.edge_entity(ids[1], ids[0]).is_none());
}

#[test]
fn altruistic_unknown_transaction_and_double_begin() {
    let mut eng = AltruisticEngine::new();
    assert_eq!(
        eng.check_lock(TxId(1), EntityId(0)),
        Err(AltruisticViolation::UnknownTransaction(TxId(1)))
    );
    eng.begin(TxId(1)).unwrap();
    assert_eq!(
        eng.begin(TxId(1)),
        Err(AltruisticViolation::AlreadyBegun(TxId(1)))
    );
    // Unlock of an item never locked.
    assert_eq!(
        eng.unlock(TxId(1), EntityId(0)),
        Err(AltruisticViolation::NotHolding(TxId(1), EntityId(0)))
    );
}

#[test]
fn altruistic_wake_is_per_pair() {
    // T3 in T1's wake is unaffected by unrelated T2's donations.
    let mut eng = AltruisticEngine::new();
    for t in 1..=3 {
        eng.begin(TxId(t)).unwrap();
    }
    eng.lock(TxId(1), EntityId(0)).unwrap();
    eng.unlock(TxId(1), EntityId(0)).unwrap();
    eng.lock(TxId(2), EntityId(5)).unwrap();
    eng.unlock(TxId(2), EntityId(5)).unwrap();
    eng.lock(TxId(3), EntityId(0)).unwrap(); // wake of T1 only
    assert!(eng.in_wake_of(TxId(3), TxId(1)));
    assert!(!eng.in_wake_of(TxId(3), TxId(2)));
    // Locking T2's donated item while already in T1's wake fails on AL2
    // for T1 (item 5 not donated by T1).
    assert!(matches!(
        eng.check_lock(TxId(3), EntityId(5)),
        Err(AltruisticViolation::OutsideWake { .. })
    ));
}

#[test]
fn dtr_lifecycle_errors() {
    let mut eng = DtrEngine::new();
    assert_eq!(
        eng.check_step(TxId(1)),
        Err(DtrViolation::UnknownTransaction(TxId(1)))
    );
    assert!(eng.finish(TxId(1)).is_err());
    let ops = BTreeMap::from([(EntityId(0), access())]);
    eng.begin(TxId(1), &ops).unwrap();
    assert!(!eng.is_done(TxId(1)));
    assert!(eng.peek(TxId(1)).is_some());
    eng.run_to_end(TxId(1)).unwrap();
    assert!(eng.peek(TxId(1)).is_none());
    let residual = eng.finish(TxId(1)).unwrap();
    assert!(residual.is_empty(), "plan unlocks everything by itself");
}

#[test]
fn dtr_empty_access_set_is_rejected() {
    let mut eng = DtrEngine::new();
    let err = eng.begin(TxId(1), &BTreeMap::new()).unwrap_err();
    assert!(matches!(err, DtrViolation::Plan(_)));
}

#[test]
fn dtr_abort_midway_releases_locks() {
    let mut eng = DtrEngine::new();
    let ops = BTreeMap::from([(EntityId(0), access()), (EntityId(1), access())]);
    eng.begin(TxId(1), &ops).unwrap();
    eng.step(TxId(1)).unwrap(); // first lock
    let released = eng.finish(TxId(1)).unwrap();
    assert_eq!(released.len(), 1, "held lock released on abort/finish");
    // A successor transaction can now take the same entities.
    eng.begin(TxId(2), &ops).unwrap();
    assert!(eng.run_to_end(TxId(2)).is_ok());
}
