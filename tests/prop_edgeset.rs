//! Property tests for `EdgeSet` — the growable `D(S)`-edge representation.
//!
//! The safety verifiers pick the `u128` fast path for `k <= 11` and the
//! fixed-stride words fallback above, so a representation bug would show
//! up only past the old `ConflictIndex` cap, exactly where no legacy test
//! looked. These properties force **both** representations through the
//! same operation sequences on the same `k` and demand identical
//! observable behavior, and they round-trip the apply/undo (mask-trail)
//! machinery the DFS leans on.

use proptest::prelude::*;
use safe_locking::core::{ConflictEdge, EdgeSet, SerializationGraph, TxId};

/// Builds the equivalent `SerializationGraph` (the trusted, slow model).
fn graph_of(k: usize, edges: &[(usize, usize)]) -> SerializationGraph {
    SerializationGraph::from_parts(
        (0..k as u32).map(TxId).collect(),
        edges
            .iter()
            .map(|&(f, t)| ConflictEdge {
                from: TxId(f as u32),
                to: TxId(t as u32),
                witness: (0, 0),
            })
            .collect(),
    )
}

proptest! {
    /// Small (`u128`) and wide (words) representations agree on every
    /// observable — membership, counts, out-degrees, cycle detection —
    /// under the same insertions, and both match the graph model.
    #[test]
    fn small_and_wide_reprs_agree(
        k in 2usize..=11,
        raw in prop::collection::vec((0usize..11, 0usize..11), 0..40),
    ) {
        let edges: Vec<(usize, usize)> =
            raw.iter().map(|&(f, t)| (f % k, t % k)).collect();
        let mut small = EdgeSet::empty(k);
        let mut wide = EdgeSet::empty_wide(k);
        prop_assert!(small.as_small_mask().is_some());
        prop_assert!(wide.as_small_mask().is_none());
        for &(f, t) in &edges {
            small.insert(f, t);
            wide.insert(f, t);
        }
        prop_assert_eq!(small.width(), wide.width());
        prop_assert_eq!(small.len(), wide.len());
        prop_assert_eq!(small.is_empty(), wide.is_empty());
        prop_assert_eq!(small.edges(), wide.edges());
        for f in 0..k {
            prop_assert_eq!(small.has_out_edges(f), wide.has_out_edges(f));
            for t in 0..k {
                prop_assert_eq!(small.contains(f, t), wide.contains(f, t));
            }
        }
        prop_assert_eq!(small.has_cycle(), wide.has_cycle());
        let model = graph_of(k, &edges);
        prop_assert_eq!(small.has_cycle(), !model.is_acyclic());
    }

    /// Apply/undo round-trips bit-for-bit in both representations: after
    /// applying a sequence of deltas and undoing the returned added-masks
    /// in reverse (LIFO, like the DFS unwind), every intermediate state
    /// matches the snapshot taken on the way down.
    #[test]
    fn apply_undo_round_trips_in_both_reprs(
        k in 2usize..=11,
        raw in prop::collection::vec(
            prop::collection::vec((0usize..11, 0usize..11), 0..4),
            0..12,
        ),
    ) {
        for use_wide in [false, true] {
            let mut set = if use_wide {
                EdgeSet::empty_wide(k)
            } else {
                EdgeSet::empty(k)
            };
            let mut snapshots = vec![set.clone()];
            let mut trail = Vec::new();
            for delta_edges in &raw {
                let mut delta = if use_wide {
                    EdgeSet::empty_wide(k)
                } else {
                    EdgeSet::empty(k)
                };
                for &(f, t) in delta_edges {
                    delta.insert(f % k, t % k);
                }
                let added = set.apply(&delta);
                // The added mask is exactly the delta minus what was
                // already present.
                for &(f, t) in delta_edges {
                    prop_assert!(set.contains(f % k, t % k));
                    // An edge is in the added-mask iff it was absent from
                    // the pre-apply snapshot.
                    prop_assert_eq!(
                        added.contains(f % k, t % k),
                        !snapshots.last().unwrap().contains(f % k, t % k)
                    );
                }
                trail.push(added);
                snapshots.push(set.clone());
            }
            while let Some(added) = trail.pop() {
                snapshots.pop();
                set.undo(&added);
                prop_assert_eq!(&set, snapshots.last().unwrap());
            }
            prop_assert!(set.is_empty());
        }
    }

    /// Past the `u128` bound the words representation is the only one;
    /// cycle detection must still match the graph model, including across
    /// 64-bit word boundaries in a row.
    #[test]
    fn wide_only_regime_matches_graph_model(
        k in 12usize..80,
        raw in prop::collection::vec((0usize..80, 0usize..80), 0..60),
    ) {
        let edges: Vec<(usize, usize)> =
            raw.iter().map(|&(f, t)| (f % k, t % k)).collect();
        let mut set = EdgeSet::empty(k);
        prop_assert!(set.as_small_mask().is_none(), "k > 11 must be words-backed");
        for &(f, t) in &edges {
            set.insert(f, t);
        }
        let model = graph_of(k, &edges);
        prop_assert_eq!(set.has_cycle(), !model.is_acyclic());
        prop_assert_eq!(set.len(), model.edge_count());
        for f in 0..k {
            prop_assert_eq!(
                set.has_out_edges(f),
                !model.successors(TxId(f as u32)).is_empty()
            );
        }
    }

    /// `pack_positions` is the from-scratch definition of the packed memo
    /// key both verifiers maintain incrementally: packing must equal the
    /// sum of per-transaction shifted contributions, and must refuse
    /// exactly the out-of-range shapes.
    #[test]
    fn pack_positions_matches_incremental_definition(
        positions in prop::collection::vec(0u16..300, 0..20),
    ) {
        let packed = safe_locking::core::pack_positions(&positions);
        let fits = positions.len() <= 16 && positions.iter().all(|&p| p <= 255);
        prop_assert_eq!(packed.is_some(), fits);
        if let Some(p) = packed {
            let mut incremental = 0u128;
            for (i, &pos) in positions.iter().enumerate() {
                for _ in 0..pos {
                    incremental += 1u128 << (8 * i);
                }
            }
            prop_assert_eq!(p, incremental);
        }
    }
}
