//! Property-based tests for the core model: structural-state semantics,
//! schedule predicates, conflict relation, and the Lemma 1–2 invariants on
//! arbitrary generated schedules.

use proptest::prelude::*;
use safe_locking::core::transform::{move_to_back, transpose, TransposeError};
use safe_locking::core::{
    are_conflict_equivalent, equivalent_serial_schedule, is_serializable, DataOp, EntityId,
    LockMode, Operation, Schedule, ScheduleSimulator, ScheduledStep, SerializationGraph, Step,
    StructuralState, TxId,
};
use std::collections::HashSet;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn arb_entity(max: u32) -> impl Strategy<Value = EntityId> {
    (0..max).prop_map(EntityId)
}

fn arb_data_op() -> impl Strategy<Value = DataOp> {
    prop_oneof![
        Just(DataOp::Read),
        Just(DataOp::Write),
        Just(DataOp::Insert),
        Just(DataOp::Delete),
    ]
}

fn arb_op() -> impl Strategy<Value = Operation> {
    prop_oneof![
        arb_data_op().prop_map(Operation::Data),
        prop_oneof![Just(LockMode::Shared), Just(LockMode::Exclusive)].prop_map(Operation::Lock),
        prop_oneof![Just(LockMode::Shared), Just(LockMode::Exclusive)].prop_map(Operation::Unlock),
    ]
}

fn arb_step(entities: u32) -> impl Strategy<Value = Step> {
    (arb_op(), arb_entity(entities)).prop_map(|(op, e)| Step { op, entity: e })
}

fn arb_scheduled_steps(
    entities: u32,
    txs: u32,
    len: usize,
) -> impl Strategy<Value = Vec<ScheduledStep>> {
    prop::collection::vec(
        ((1..=txs).prop_map(TxId), arb_step(entities))
            .prop_map(|(tx, s)| ScheduledStep::new(tx, s)),
        0..len,
    )
}

/// A *legal & proper by construction* schedule generator: random action
/// requests filtered through the `ScheduleSimulator`, plus per-transaction
/// lock discipline so transactions stay well formed.
fn constructed_schedule(seed_steps: Vec<ScheduledStep>, g0: &StructuralState) -> Schedule {
    let mut sim = ScheduleSimulator::new(g0.clone());
    let mut out = Vec::new();
    // (tx, entity) -> currently held mode; (tx, entity) ever locked.
    let mut held: HashSet<(TxId, EntityId, bool)> = HashSet::new();
    let mut ever: HashSet<(TxId, EntityId)> = HashSet::new();
    for s in seed_steps {
        let tx = s.tx;
        let e = s.step.entity;
        let exclusive_held = held.contains(&(tx, e, true));
        let shared_held = held.contains(&(tx, e, false));
        let ok_discipline = match s.step.op {
            Operation::Lock(_) => !ever.contains(&(tx, e)),
            Operation::Unlock(LockMode::Exclusive) => exclusive_held,
            Operation::Unlock(LockMode::Shared) => shared_held,
            Operation::Data(d) => match d.required_mode() {
                LockMode::Exclusive => exclusive_held,
                LockMode::Shared => exclusive_held || shared_held,
            },
        };
        if !ok_discipline || sim.apply(tx, &s.step).is_err() {
            continue;
        }
        match s.step.op {
            Operation::Lock(m) => {
                held.insert((tx, e, m == LockMode::Exclusive));
                ever.insert((tx, e));
            }
            Operation::Unlock(m) => {
                held.remove(&(tx, e, m == LockMode::Exclusive));
            }
            _ => {}
        }
        out.push(s);
    }
    Schedule::from_steps(out)
}

// ---------------------------------------------------------------------
// Structural state vs a HashSet model
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn bitset_state_matches_hashset_model(ops in prop::collection::vec((any::<bool>(), 0u32..200), 0..300)) {
        let mut bitset = StructuralState::empty();
        let mut model: HashSet<u32> = HashSet::new();
        for (insert, id) in ops {
            let e = EntityId(id);
            if insert {
                prop_assert_eq!(bitset.insert(e), model.insert(id));
            } else {
                prop_assert_eq!(bitset.remove(e), model.remove(&id));
            }
            prop_assert_eq!(bitset.len(), model.len());
            prop_assert_eq!(bitset.contains(e), model.contains(&id));
        }
        let mut from_bitset: Vec<u32> = bitset.iter().map(|e| e.0).collect();
        let mut from_model: Vec<u32> = model.into_iter().collect();
        from_bitset.sort_unstable();
        from_model.sort_unstable();
        prop_assert_eq!(from_bitset, from_model);
    }

    #[test]
    fn state_equality_is_content_based(ids in prop::collection::hash_set(0u32..200, 0..40)) {
        // Insert in two different orders with extra churn; states compare equal.
        let mut a = StructuralState::empty();
        let mut sorted: Vec<u32> = ids.iter().copied().collect();
        sorted.sort_unstable();
        for &i in &sorted {
            a.insert(EntityId(i));
        }
        let mut b = StructuralState::empty();
        b.insert(EntityId(199)); // churn word allocation
        for &i in sorted.iter().rev() {
            b.insert(EntityId(i));
        }
        if !ids.contains(&199) {
            b.remove(EntityId(199));
        }
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------
// Conflict relation and serializability
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn conflict_relation_is_symmetric(a in arb_step(6), b in arb_step(6)) {
        prop_assert_eq!(a.conflicts_with(&b), b.conflicts_with(&a));
    }

    #[test]
    fn benign_pairs_never_conflict(e in arb_entity(6)) {
        let benign = [Step::read(e), Step::lock_shared(e), Step::unlock_shared(e)];
        for a in &benign {
            for b in &benign {
                prop_assert!(!a.conflicts_with(b));
            }
        }
    }

    #[test]
    fn serial_schedules_are_serializable(steps in arb_scheduled_steps(5, 3, 40)) {
        // Group the random steps per transaction, then concatenate.
        let mut by_tx: Vec<(TxId, Vec<Step>)> = Vec::new();
        for s in steps {
            match by_tx.iter_mut().find(|(t, _)| *t == s.tx) {
                Some((_, v)) => v.push(s.step),
                None => by_tx.push((s.tx, vec![s.step])),
            }
        }
        let serial: Schedule = by_tx
            .into_iter()
            .flat_map(|(tx, v)| v.into_iter().map(move |s| ScheduledStep::new(tx, s)))
            .collect();
        prop_assert!(is_serializable(&serial));
    }

    #[test]
    fn equivalent_serial_schedule_is_equivalent(steps in arb_scheduled_steps(4, 3, 30)) {
        let s = Schedule::from_steps(steps);
        if let Some(serial) = equivalent_serial_schedule(&s) {
            prop_assert!(are_conflict_equivalent(&s, &serial));
            prop_assert!(is_serializable(&serial));
        } else {
            prop_assert!(!is_serializable(&s));
        }
    }

    #[test]
    fn sgraph_nodes_match_participants(steps in arb_scheduled_steps(4, 4, 30)) {
        let s = Schedule::from_steps(steps);
        let g = SerializationGraph::of(&s);
        let mut nodes: Vec<TxId> = g.nodes().to_vec();
        let mut parts = s.participants();
        nodes.sort_unstable();
        parts.sort_unstable();
        prop_assert_eq!(nodes, parts);
    }

    #[test]
    fn acyclic_iff_topological_sort_exists(steps in arb_scheduled_steps(4, 4, 30)) {
        let g = SerializationGraph::of(&Schedule::from_steps(steps));
        prop_assert_eq!(g.is_acyclic(), g.topological_sort().is_some());
        prop_assert_eq!(g.is_acyclic(), g.find_cycle().is_none());
    }
}

// ---------------------------------------------------------------------
// Lemmas 1 and 2 on constructed legal & proper schedules
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lemma1_on_constructed_schedules(
        seed in arb_scheduled_steps(5, 3, 60),
        initial in prop::collection::hash_set(0u32..5, 0..5),
    ) {
        let g0 = StructuralState::from_entities(initial.into_iter().map(EntityId));
        let s = constructed_schedule(seed, &g0);
        prop_assert!(s.is_legal());
        prop_assert!(s.is_proper(&g0));
        let d = SerializationGraph::of(&s);
        for pos in 0..s.len().saturating_sub(1) {
            match transpose(&s, pos) {
                Ok(swapped) => {
                    prop_assert!(swapped.is_legal(), "transposition at {} broke legality", pos);
                    prop_assert!(swapped.is_proper(&g0), "transposition at {} broke properness", pos);
                    prop_assert_eq!(&SerializationGraph::of(&swapped), &d);
                }
                Err(TransposeError::SameTransaction | TransposeError::ConflictingSteps) => {}
                Err(e) => prop_assert!(false, "unexpected transpose error: {e}"),
            }
        }
    }

    #[test]
    fn lemma2_on_constructed_schedules(
        seed in arb_scheduled_steps(5, 3, 60),
        initial in prop::collection::hash_set(0u32..5, 0..5),
        prefix_frac in 0.0f64..=1.0,
    ) {
        let g0 = StructuralState::from_entities(initial.into_iter().map(EntityId));
        let s = constructed_schedule(seed, &g0);
        let d = SerializationGraph::of(&s);
        let prefix_len = ((s.len() as f64) * prefix_frac) as usize;
        let d_prefix = SerializationGraph::of(&s.prefix(prefix_len));
        for sink in d_prefix.sinks() {
            let moved = move_to_back(&s, prefix_len, sink);
            prop_assert!(moved.is_legal(), "move of {sink} broke legality");
            prop_assert!(moved.is_proper(&g0), "move of {sink} broke properness");
            prop_assert_eq!(&SerializationGraph::of(&moved), &d);
        }
    }

    #[test]
    fn moving_a_non_sink_can_change_but_never_fixes_ds(
        seed in arb_scheduled_steps(4, 3, 50),
        initial in prop::collection::hash_set(0u32..4, 0..4),
    ) {
        // Sanity complement for Lemma 2: move_to_back always preserves
        // per-transaction order, hence always yields a *schedule*; what it
        // may break without the sink precondition is legality/properness/D.
        let g0 = StructuralState::from_entities(initial.into_iter().map(EntityId));
        let s = constructed_schedule(seed, &g0);
        for tx in s.participants() {
            let moved = move_to_back(&s, s.len(), tx);
            // Projections (program order) are always preserved.
            prop_assert_eq!(moved.projection(tx), s.projection(tx));
        }
    }
}
