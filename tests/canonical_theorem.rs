//! Cross-crate validation of Theorem 1's structure beyond the E6 verdict
//! agreement: witness anatomy, the exclusive-locks specialization
//! (Section 3.3), minimization, and the if-direction implication.

use safe_locking::core::{is_serializable, LockMode, Operation, SerializationGraph};
use safe_locking::verifier::{
    find_canonical_witness, minimize_witness, random_system, verify_safety, CanonicalBudget,
    GenParams, SearchBudget,
};

#[test]
fn witnesses_satisfy_every_stated_condition() {
    let mut found = 0;
    for seed in 0..60u64 {
        let system = random_system(GenParams::default(), seed);
        let outcome = find_canonical_witness(&system, CanonicalBudget::default());
        let Some(w) = outcome.witness() else { continue };
        found += 1;
        // The verifier-checked certificate must verify.
        assert_eq!(w.verify(&system), Ok(()), "seed {seed}");
        // Condition 1 anatomy: Tc's prefix contains an unlock, and the
        // step at lock_pos locks A*.
        let tc = system.get(w.tc).unwrap();
        assert!(tc.unlocked_anything_by(w.lock_pos));
        assert!(matches!(tc.steps[w.lock_pos].op, Operation::Lock(_)));
        assert_eq!(tc.steps[w.lock_pos].entity, w.a_star);
        // Tc is not two-phase (condition 1 implies it).
        assert!(!tc.is_two_phase(), "seed {seed}: Tc must violate 2PL");
        // The serial prefix is serial, legal, proper, and serializable.
        let s_prime = w.serial_prefix(&system);
        assert!(s_prime.is_legal());
        assert!(s_prime.is_proper(system.initial_state()));
        assert!(is_serializable(&s_prime));
        // If-direction: the complete extension is nonserializable.
        assert!(!is_serializable(&w.extension), "seed {seed}");
    }
    assert!(found >= 5, "expected several unsafe systems, found {found}");
}

#[test]
fn exclusive_only_witnesses_have_unique_sinks() {
    // Section 3.3: with only exclusive locks, D(S') has a unique sink.
    let params = GenParams {
        structural_prob: 0.3,
        shared_lock_prob: 0.0,
        ..GenParams::default()
    };
    let mut checked = 0;
    for seed in 0..80u64 {
        let system = random_system(params, seed);
        // Skip systems that use shared locks.
        let uses_shared = system.transactions().iter().any(|t| {
            t.steps
                .iter()
                .any(|s| matches!(s.op, Operation::Lock(LockMode::Shared)))
        });
        if uses_shared {
            continue;
        }
        let outcome = find_canonical_witness(&system, CanonicalBudget::default());
        if let Some(w) = outcome.witness() {
            checked += 1;
            assert!(
                w.has_unique_sink(&system),
                "seed {seed}: exclusive-only canonical witness must have a unique sink"
            );
        }
    }
    assert!(
        checked >= 2,
        "expected some exclusive-only witnesses, got {checked}"
    );
}

#[test]
fn minimized_witnesses_stay_valid_counterexamples() {
    for seed in 0..40u64 {
        let system = random_system(GenParams::default(), seed);
        let verdict = verify_safety(&system, SearchBudget::default());
        let Some(w) = verdict.witness() else { continue };
        let min = minimize_witness(w, system.initial_state());
        assert!(min.is_legal(), "seed {seed}");
        assert!(min.is_proper(system.initial_state()), "seed {seed}");
        assert!(!is_serializable(&min), "seed {seed}");
        assert!(min.participants().len() >= 2, "seed {seed}");
        assert!(
            min.len() <= w.len(),
            "seed {seed}: minimization never grows"
        );
        // Minimization only removes whole transactions, so every remaining
        // projection matches the original witness's projection.
        for tx in min.participants() {
            assert_eq!(min.projection(tx), w.projection(tx), "seed {seed}");
        }
    }
}

#[test]
fn exhaustive_witnesses_are_genuine() {
    for seed in 0..40u64 {
        let system = random_system(GenParams::default(), seed);
        if let Some(w) = verify_safety(&system, SearchBudget::default()).witness() {
            assert!(w.is_legal(), "seed {seed}");
            assert!(w.is_proper(system.initial_state()), "seed {seed}");
            assert!(!is_serializable(w), "seed {seed}");
            // Complete over its participants.
            let parts: Vec<_> = w
                .participants()
                .iter()
                .map(|&id| system.get(id).unwrap().clone())
                .collect();
            assert!(w.is_complete_schedule_of(&parts), "seed {seed}");
            // And its serialization graph really has a cycle.
            assert!(
                SerializationGraph::of(w).find_cycle().is_some(),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn budget_exhaustion_degrades_gracefully() {
    let system = random_system(GenParams::default(), 3);
    let tiny = SearchBudget {
        max_states: 5,
        ..Default::default()
    };
    let verdict = verify_safety(&system, tiny);
    // Must never claim Safe with an exhausted budget.
    match verdict {
        safe_locking::verifier::Verdict::Safe(stats) => {
            assert!(stats.states <= 5, "safe verdicts within budget are fine");
        }
        safe_locking::verifier::Verdict::Unsafe { witness, .. } => {
            assert!(!is_serializable(&witness));
        }
        safe_locking::verifier::Verdict::Exhausted(_) => {}
    }
}
