//! Property-based tests for the graph substrate: dominators against the
//! path-enumeration definition, reachability duality, forest invariants.

use proptest::prelude::*;
use safe_locking::core::EntityId;
use safe_locking::graph::{dag, dominators, forest::Forest, reach, rooted, DiGraph};
use std::collections::BTreeSet;

/// Generates a random *layered* DAG description: `widths[i]` nodes in
/// layer i, and for each non-root node a nonempty set of parents drawn
/// from the previous layer. Layered construction guarantees acyclicity
/// and rootedness by construction.
fn arb_layered_dag() -> impl Strategy<Value = (DiGraph, EntityId)> {
    (1usize..4, 1usize..4, any::<u64>()).prop_map(|(layers, width, seed)| {
        // Simple deterministic pseudo-random expansion from the seed.
        let mut state = seed | 1;
        let mut next = move |bound: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % bound.max(1)
        };
        let mut g = DiGraph::new();
        let root = EntityId(0);
        g.add_node(root).unwrap();
        let mut prev = vec![root];
        let mut id = 1u32;
        for _ in 0..layers {
            let mut this = Vec::new();
            for _ in 0..width {
                let n = EntityId(id);
                id += 1;
                g.add_node(n).unwrap();
                let parents = 1 + next(prev.len());
                let mut choices: Vec<EntityId> = prev.clone();
                while choices.len() > parents {
                    let i = next(choices.len());
                    choices.swap_remove(i);
                }
                for p in choices {
                    g.add_edge(p, n).unwrap();
                }
                this.push(n);
            }
            prev = this;
        }
        (g, root)
    })
}

/// All simple paths from `from` to `to`.
fn all_paths(g: &DiGraph, from: EntityId, to: EntityId) -> Vec<Vec<EntityId>> {
    fn rec(
        g: &DiGraph,
        cur: EntityId,
        to: EntityId,
        path: &mut Vec<EntityId>,
        out: &mut Vec<Vec<EntityId>>,
    ) {
        path.push(cur);
        if cur == to {
            out.push(path.clone());
        } else {
            for s in g.successors(cur) {
                if !path.contains(&s) {
                    rec(g, s, to, path, out);
                }
            }
        }
        path.pop();
    }
    let mut out = Vec::new();
    rec(g, from, to, &mut Vec::new(), &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn layered_dags_are_rooted_and_acyclic((g, root) in arb_layered_dag()) {
        prop_assert!(dag::is_acyclic(&g));
        prop_assert_eq!(rooted::root(&g), Some(root));
    }

    #[test]
    fn dominators_match_path_enumeration((g, root) in arb_layered_dag()) {
        let dom = dominators::dominator_sets(&g, root);
        for w in g.nodes() {
            let paths = all_paths(&g, root, w);
            prop_assert!(!paths.is_empty(), "every node reachable from the root");
            for d in g.nodes() {
                let by_paths = paths.iter().all(|p| p.contains(&d));
                let by_dataflow = dom[&w].contains(&d);
                prop_assert_eq!(by_paths, by_dataflow, "dominates({}, {})", d, w);
            }
        }
    }

    #[test]
    fn ancestors_and_descendants_are_dual((g, _root) in arb_layered_dag()) {
        for a in g.nodes() {
            for b in g.nodes() {
                let a_anc_of_b = reach::descendants(&g, a).contains(&b);
                let b_desc_of_a = reach::ancestors(&g, b).contains(&a);
                prop_assert_eq!(a_anc_of_b, b_desc_of_a);
            }
        }
    }

    #[test]
    fn topological_sort_respects_every_edge((g, _root) in arb_layered_dag()) {
        let order = dag::topological_sort(&g).expect("acyclic");
        let pos = |n: EntityId| order.iter().position(|&x| x == n).unwrap();
        for (a, b) in g.edges() {
            prop_assert!(pos(a) < pos(b), "edge ({a}, {b}) out of order");
        }
    }

    #[test]
    fn root_dominates_every_node((g, root) in arb_layered_dag()) {
        let dom = dominators::dominator_sets(&g, root);
        for n in g.nodes() {
            prop_assert!(dom[&n].contains(&root));
            prop_assert!(dom[&n].contains(&n));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forest_operations_maintain_forest_shape(
        ops in prop::collection::vec((0u8..4, 0u32..24, 0u32..24), 0..80)
    ) {
        let mut f = Forest::new();
        for (kind, a, b) in ops {
            let (ea, eb) = (EntityId(a), EntityId(b));
            match kind {
                0 => { let _ = f.add_root(ea); }
                1 => { let _ = f.add_child(ea, eb); }
                2 => { let _ = f.join(ea, eb); }
                _ => { let _ = f.remove(ea); }
            }
            // Invariants: every node has a root; paths terminate; roots
            // have no parent.
            for n in f.nodes().collect::<Vec<_>>() {
                let root = f.root_of(n).expect("every node in some tree");
                prop_assert!(f.parent(root).is_none());
                let path = f.path_from_root(n).expect("path exists");
                prop_assert_eq!(path[0], root);
                prop_assert_eq!(*path.last().unwrap(), n);
                // No duplicates in the path (no cycles).
                let set: BTreeSet<_> = path.iter().copied().collect();
                prop_assert_eq!(set.len(), path.len());
            }
        }
    }

    #[test]
    fn lca_is_a_common_ancestor_and_deepest(
        ops in prop::collection::vec((0u8..3, 0u32..16, 0u32..16), 0..40)
    ) {
        let mut f = Forest::new();
        for (kind, a, b) in ops {
            let (ea, eb) = (EntityId(a), EntityId(b));
            match kind {
                0 => { let _ = f.add_root(ea); }
                1 => { let _ = f.add_child(ea, eb); }
                _ => { let _ = f.join(ea, eb); }
            }
        }
        let nodes: Vec<EntityId> = f.nodes().collect();
        for &a in &nodes {
            for &b in &nodes {
                match f.lca(a, b) {
                    Some(l) => {
                        prop_assert!(f.is_ancestor(l, a));
                        prop_assert!(f.is_ancestor(l, b));
                        // Deepest: no child of l is an ancestor of both.
                        for c in f.children(l) {
                            prop_assert!(!(f.is_ancestor(c, a) && f.is_ancestor(c, b)));
                        }
                    }
                    None => prop_assert!(f.root_of(a) != f.root_of(b)
                        || f.root_of(a).is_none()),
                }
            }
        }
    }
}
