//! Exercises the public API surface end to end — doubles as executable
//! usage documentation for downstream users.

use safe_locking::core::display::{render_schedule_line, render_schedule_rows, render_step};
use safe_locking::core::{
    DataOp, EntityId, InteractionGraph, LockMode, LockTable, LockedTransaction, Operation,
    Schedule, ScheduledStep, SerializationGraph, Step, StructuralState, SystemBuilder, Transaction,
    TxId, Universe,
};

#[test]
fn universe_and_entities() {
    let mut u = Universe::new();
    assert!(u.is_empty());
    let ids = u.entities(["alpha", "beta", "gamma"]);
    assert_eq!(u.len(), 3);
    assert_eq!(u.name(ids[1]), "beta");
    assert_eq!(u.iter().count(), 3);
    assert_eq!(ids[0].index(), 0);
}

#[test]
fn operation_taxonomy() {
    assert_eq!(DataOp::ALL.len(), 4);
    for d in DataOp::ALL {
        let op: Operation = d.into();
        assert_eq!(op.data(), Some(d));
        assert!(!op.is_lock() && !op.is_unlock());
        assert_eq!(op.abbrev().len(), 1);
    }
    assert_eq!(Operation::Lock(LockMode::Shared).abbrev(), "LS");
    assert!(DataOp::Read.requires_present());
    assert!(!DataOp::Insert.requires_present());
}

#[test]
fn transaction_introspection() {
    let t = LockedTransaction::new(
        TxId(5),
        vec![
            Step::lock_exclusive(EntityId(0)),
            Step::write(EntityId(0)),
            Step::unlock_exclusive(EntityId(0)),
            Step::lock_shared(EntityId(1)),
            Step::read(EntityId(1)),
            Step::unlock_shared(EntityId(1)),
        ],
    );
    assert_eq!(t.len(), 6);
    assert_eq!(t.lock_positions(), vec![0, 3]);
    assert_eq!(t.locked_entities(), vec![EntityId(0), EntityId(1)]);
    assert_eq!(t.locked_point(), Some(3));
    assert!(!t.is_two_phase());
    let held = t.held_locks_at(2);
    assert_eq!(held.get(&EntityId(0)), Some(&LockMode::Exclusive));
    assert_eq!(t.held_locks_at(6).len(), 0);
    let plain: Transaction = t.unlocked();
    assert_eq!(plain.steps.len(), 2);
    assert_eq!(plain.entities(), vec![EntityId(0), EntityId(1)]);
}

#[test]
fn schedule_navigation() {
    let mut b = SystemBuilder::new();
    b.exists("x");
    b.tx(1).lx("x").write("x").ux("x").finish();
    b.tx(2).ls("x").read("x").us("x").finish();
    let sys = b.build();
    let s = Schedule::interleave(
        sys.transactions(),
        &[TxId(1), TxId(1), TxId(1), TxId(2), TxId(2), TxId(2)],
    )
    .unwrap();
    assert_eq!(s.positions_of(TxId(2)), vec![3, 4, 5]);
    assert_eq!(s.participants(), vec![TxId(1), TxId(2)]);
    assert!(s.has_prefix(&s.prefix(2)));
    assert_eq!(s.prefix(100).len(), s.len());
    // Display forms.
    let line = render_schedule_line(&s, sys.universe());
    assert!(line.starts_with("T1:(LX x)"));
    let rows = render_schedule_rows(&s, sys.universe(), &[TxId(2), TxId(1)]);
    assert!(rows.lines().next().unwrap().starts_with("T2:"));
    assert_eq!(
        render_step(&Step::read(EntityId(0)), sys.universe()),
        "(R x)"
    );
    // Step-level display.
    assert_eq!(
        ScheduledStep::new(TxId(1), Step::read(EntityId(0))).to_string(),
        "T1:(R e0)"
    );
}

#[test]
fn lock_table_queries() {
    let mut table = LockTable::new();
    table.grant(TxId(1), EntityId(7), LockMode::Shared);
    table.grant(TxId(2), EntityId(7), LockMode::Shared);
    assert_eq!(table.holders(EntityId(7)).len(), 2);
    assert_eq!(table.entities_held_by(TxId(1)), vec![EntityId(7)]);
    assert_eq!(table.mode_of(TxId(2), EntityId(7)), Some(LockMode::Shared));
    assert!(table.is_locked(EntityId(7)));
    assert_eq!(
        table.conflicting_holder(TxId(3), EntityId(7), LockMode::Exclusive),
        Some(TxId(1))
    );
    // A transaction's own lock never conflicts with its request — but
    // other holders still do (upgrading under shared company is illegal).
    assert_eq!(
        table.conflicting_holder(TxId(1), EntityId(7), LockMode::Exclusive),
        Some(TxId(2))
    );
    table.release(TxId(2), EntityId(7), LockMode::Shared);
    assert_eq!(
        table.conflicting_holder(TxId(1), EntityId(7), LockMode::Exclusive),
        None
    );
}

#[test]
fn structural_state_collections() {
    let g: StructuralState = (0..5).map(EntityId).collect();
    assert_eq!(g.len(), 5);
    let h = StructuralState::from_entities((0..5).map(EntityId));
    assert_eq!(g, h);
    assert_eq!(format!("{g:?}"), "{e0, e1, e2, e3, e4}");
}

#[test]
fn serialization_graph_queries() {
    let s = Schedule::from_steps(vec![
        ScheduledStep::new(TxId(1), Step::write(EntityId(0))),
        ScheduledStep::new(TxId(2), Step::read(EntityId(0))),
        ScheduledStep::new(TxId(2), Step::write(EntityId(1))),
        ScheduledStep::new(TxId(3), Step::read(EntityId(1))),
    ]);
    let g = SerializationGraph::of(&s);
    assert_eq!(g.node_count(), 3);
    assert_eq!(g.edge_count(), 2);
    assert_eq!(g.successors(TxId(1)), vec![TxId(2)]);
    assert_eq!(g.predecessors(TxId(3)), vec![TxId(2)]);
    assert_eq!(g.sources(), vec![TxId(1)]);
    assert_eq!(g.sinks(), vec![TxId(3)]);
    let edges: Vec<_> = g.edges().collect();
    assert_eq!(edges.len(), 2);
    assert!(g.to_string().contains("T1 -> T2"));
}

#[test]
fn interaction_graph_queries() {
    let txs = vec![
        LockedTransaction::new(TxId(1), vec![Step::write(EntityId(0))]),
        LockedTransaction::new(TxId(2), vec![Step::read(EntityId(0))]),
        LockedTransaction::new(TxId(3), vec![Step::read(EntityId(9))]),
    ];
    let ig = InteractionGraph::of(&txs);
    assert!(ig.adjacent(TxId(1), TxId(2)));
    assert!(!ig.adjacent(TxId(1), TxId(3)));
    assert_eq!(ig.edges().count(), 1);
    assert_eq!(ig.nodes().len(), 3);
    assert!(ig.to_string().contains("T1 -- T2"));
}

#[test]
fn sim_report_accounting() {
    use safe_locking::policies::{PolicyConfig, PolicyKind, PolicyRegistry};
    use safe_locking::sim::{build_adapter, run_sim, uniform_jobs, SimConfig};
    let pool: Vec<EntityId> = (0..4).map(EntityId).collect();
    let jobs = uniform_jobs(&pool, 8, 2, 1);
    let mut a = build_adapter(
        &PolicyRegistry::new(),
        PolicyKind::TwoPhase,
        &PolicyConfig::flat(pool),
    )
    .unwrap();
    let report = run_sim(&mut a, &jobs, &SimConfig::default());
    assert!(report.abort_rate() >= 0.0 && report.abort_rate() <= 1.0);
    assert!(report.throughput() > 0.0);
    assert_eq!(
        report.attempts,
        report.committed + report.policy_aborts + report.deadlock_aborts + report.rejected
    );
    assert_eq!(report.rejected, 0);
}

#[test]
fn policy_engine_api_surface() {
    // Pins the unified policy API: PolicyKind taxonomy, registry
    // construction (by kind and by name, custom builders included), the
    // object-safe PolicyEngine trait, typed responses and violations.
    use safe_locking::policies::{
        AccessIntent, PlanViolation, PolicyAction, PolicyConfig, PolicyEngine, PolicyKind,
        PolicyRegistry, PolicyResponse, PolicyViolation, RegistryError, TwoPhaseEngine,
    };

    // Kind taxonomy: names round-trip, safety partition is exact.
    assert_eq!(PolicyKind::ALL.len(), 7);
    assert_eq!(PolicyKind::SAFE.len(), 4);
    assert_eq!(PolicyKind::MUTANTS.len(), 3);
    for kind in PolicyKind::ALL {
        assert_eq!(PolicyKind::from_name(kind.name()), Some(kind));
        assert_eq!(kind.is_safe(), !kind.is_mutant());
        assert!(kind.base().is_safe());
        assert_eq!(kind.to_string(), kind.name());
    }
    assert_eq!(PolicyKind::from_name("2pl"), Some(PolicyKind::TwoPhase));

    // Registry: builds every kind as Box<dyn PolicyEngine>; engine names
    // match kind names; graphless DDAG is a typed error.
    let registry = PolicyRegistry::new();
    assert_eq!(registry.kinds().len(), 7);
    let flat = PolicyConfig::flat((0..4).map(EntityId).collect());
    for kind in PolicyKind::ALL {
        if kind.needs_graph() {
            assert!(matches!(
                registry.build(kind, &flat).err(),
                Some(RegistryError::NeedsGraph(k)) if k == kind
            ));
        } else {
            let engine: Box<dyn PolicyEngine> = registry.build(kind, &flat).unwrap();
            assert_eq!(engine.name(), kind.name());
        }
    }

    // The trait lifecycle: begin / request / finish, typed responses.
    let mut engine = registry.build(PolicyKind::TwoPhase, &flat).unwrap();
    assert!(engine
        .begin(TxId(1), &AccessIntent::empty())
        .unwrap()
        .is_none());
    let steps = engine
        .request(TxId(1), PolicyAction::Lock(EntityId(0)))
        .expect_granted();
    assert_eq!(steps, vec![Step::lock_exclusive(EntityId(0))]);
    engine.begin(TxId(2), &AccessIntent::empty()).unwrap();
    assert_eq!(
        engine.request(TxId(2), PolicyAction::Lock(EntityId(0))),
        PolicyResponse::Conflict {
            entity: EntityId(0),
            holder: TxId(1)
        }
    );
    // Actions outside the vocabulary are typed, fatal violations.
    let v = engine
        .request(TxId(1), PolicyAction::InsertEdge(EntityId(0), EntityId(1)))
        .violation()
        .unwrap();
    assert!(matches!(
        v,
        PolicyViolation::Unsupported { policy: "2PL", .. }
    ));
    assert!(v.is_fatal());
    assert!(!engine.finish(TxId(1)).unwrap().is_empty());
    assert!(engine.abort(TxId(2)).is_empty(), "T2 held nothing");

    // DTR returns its DT2-precomputed plan from begin.
    let mut dtr = registry.build(PolicyKind::Dtr, &flat).unwrap();
    let plan = dtr
        .begin(TxId(1), &AccessIntent::access([EntityId(0)]))
        .unwrap()
        .expect("DT2 plans at begin");
    assert_eq!(plan[0], PolicyAction::Lock(EntityId(0)));
    // Off-plan requests are typed violations.
    let v = dtr
        .request(TxId(1), PolicyAction::Lock(EntityId(3)))
        .violation()
        .unwrap();
    assert!(matches!(v, PolicyViolation::OffPlan(..)));

    // Violation classification is structural, not string-typed.
    assert!(PolicyViolation::Plan(PlanViolation::EmptyJob).is_fatal());
    assert!(!PolicyViolation::Plan(PlanViolation::NotRooted).is_fatal());

    // Custom builders extend the registry by name.
    let mut registry = PolicyRegistry::new();
    registry.register("custom", |_| Ok(Box::new(TwoPhaseEngine::new())));
    assert!(registry.build_named("custom", &flat).is_ok());
    assert!(matches!(
        registry.build_named("missing", &flat).err(),
        Some(RegistryError::UnknownPolicy(_))
    ));
}

#[test]
fn verifier_outcome_displays() {
    use safe_locking::verifier::{find_canonical_witness, CanonicalBudget};
    let mut b = SystemBuilder::new();
    b.exists("x");
    b.exists("y");
    b.tx(1)
        .lx("x")
        .write("x")
        .ux("x")
        .lx("y")
        .write("y")
        .ux("y")
        .finish();
    b.tx(2)
        .lx("x")
        .write("x")
        .ux("x")
        .lx("y")
        .write("y")
        .ux("y")
        .finish();
    let system = b.build();
    let outcome = find_canonical_witness(&system, CanonicalBudget::default());
    let w = outcome.witness().unwrap();
    let text = w.to_string();
    assert!(text.contains("Tc = "));
    assert!(text.contains("A* = "));
    let stats = outcome.stats();
    assert!(stats.candidates > 0);
    assert!(stats.to_string().contains("candidates"));
}

#[test]
fn job_and_workload_api() {
    use safe_locking::sim::{layered_dag, Job};
    let j = Job::access(vec![EntityId(1)]);
    assert_eq!(j.size(), 1);
    let j = Job::insert(EntityId(0), EntityId(9));
    assert_eq!(j.size(), 1);
    let d = layered_dag(3, 2, 1, 0);
    assert_eq!(d.nodes.len(), 3);
    assert_eq!(d.nodes[0], vec![d.root]);
    assert_eq!(d.graph.node_count(), 5);
}
