//! Cross-crate policy-safety integration: every trace the simulator
//! produces under a sound policy — across seeds, workloads,
//! multiprogramming levels, with waits, deadlock aborts, and policy
//! aborts — must be legal, proper, and serializable. All policies are
//! selected by [`PolicyKind`] and built through the [`PolicyRegistry`].

use safe_locking::core::{is_serializable, EntityId};
use safe_locking::policies::{PolicyConfig, PolicyKind, PolicyRegistry};
use safe_locking::sim::{
    build_adapter, dag_access_jobs, dag_mixed_jobs, layered_dag, long_short_jobs, run_sim,
    uniform_jobs, PolicyInstance, SimConfig,
};

fn flat(kind: PolicyKind, pool: &[EntityId]) -> PolicyInstance {
    build_adapter(
        &PolicyRegistry::new(),
        kind,
        &PolicyConfig::flat(pool.to_vec()),
    )
    .expect("flat kind")
}

fn assert_trace_ok(
    report: &safe_locking::sim::SimReport,
    initial: &safe_locking::core::StructuralState,
) {
    assert!(!report.timed_out, "{} timed out", report.policy);
    assert!(
        report.schedule.is_legal(),
        "{}: illegal trace",
        report.policy
    );
    assert!(
        report.schedule.is_proper(initial),
        "{}: improper trace",
        report.policy
    );
    assert!(
        is_serializable(&report.schedule),
        "{}: NONSERIALIZABLE trace — safety theorem violated!",
        report.policy
    );
}

#[test]
fn two_phase_traces_serializable_across_seeds_and_mpls() {
    for seed in 0..6 {
        for workers in [1, 3, 8] {
            let pool: Vec<EntityId> = (0..10).map(EntityId).collect();
            let jobs = uniform_jobs(&pool, 25, 4, seed);
            let mut a = flat(PolicyKind::TwoPhase, &pool);
            let initial = a.initial_state();
            let report = run_sim(
                &mut a,
                &jobs,
                &SimConfig {
                    workers,
                    ..Default::default()
                },
            );
            assert_eq!(report.committed, 25);
            assert_trace_ok(&report, &initial);
        }
    }
}

#[test]
fn altruistic_traces_serializable_with_wake_churn() {
    for seed in 0..6 {
        let pool: Vec<EntityId> = (0..20).map(EntityId).collect();
        // A long scan plus short transactions guarantees wake activity and
        // AL2 aborts (restarts are part of the trace).
        let jobs = long_short_jobs(&pool, 14, 20, 2, seed);
        let mut a = flat(PolicyKind::Altruistic, &pool);
        let initial = a.initial_state();
        let report = run_sim(
            &mut a,
            &jobs,
            &SimConfig {
                workers: 6,
                ..Default::default()
            },
        );
        assert_eq!(report.committed, 21);
        assert_trace_ok(&report, &initial);
    }
}

#[test]
fn ddag_traces_serializable_under_structural_churn() {
    for seed in 0..6 {
        let dag = layered_dag(4, 4, 2, seed);
        let mut a = build_adapter(
            &PolicyRegistry::new(),
            PolicyKind::Ddag,
            &PolicyConfig::dag(dag.universe.clone(), dag.graph.clone()),
        )
        .expect("DAG provided");
        let jobs = {
            let mut intern = |name: &str| a.intern(name).expect("DDAG interns");
            dag_mixed_jobs(&dag, 25, 2, 0.3, &mut intern, seed + 100)
        };
        let initial = a.initial_state();
        let report = run_sim(
            &mut a,
            &jobs,
            &SimConfig {
                workers: 5,
                ..Default::default()
            },
        );
        assert_eq!(report.committed, 25);
        assert_trace_ok(&report, &initial);
        // The graph must remain a rooted DAG after all the churn.
        assert!(safe_locking::graph::dag::is_acyclic(
            a.graph().expect("DDAG has a graph")
        ));
    }
}

#[test]
fn ddag_pure_traversals_have_no_policy_aborts() {
    // Without structural changes, plans never get invalidated.
    for seed in 0..4 {
        let dag = layered_dag(4, 4, 2, seed);
        let jobs = dag_access_jobs(&dag, 25, 2, seed);
        let mut a = build_adapter(
            &PolicyRegistry::new(),
            PolicyKind::Ddag,
            &PolicyConfig::dag(dag.universe.clone(), dag.graph.clone()),
        )
        .expect("DAG provided");
        let initial = a.initial_state();
        let report = run_sim(
            &mut a,
            &jobs,
            &SimConfig {
                workers: 5,
                ..Default::default()
            },
        );
        assert_eq!(report.policy_aborts, 0, "static graph -> stable plans");
        assert_eq!(
            report.deadlock_aborts, 0,
            "topological lock order -> no deadlock"
        );
        assert_trace_ok(&report, &initial);
    }
}

#[test]
fn dtr_traces_serializable_and_deadlock_free() {
    for seed in 0..6 {
        let pool: Vec<EntityId> = (0..14).map(EntityId).collect();
        let jobs = uniform_jobs(&pool, 25, 3, seed);
        let mut a = flat(PolicyKind::Dtr, &pool);
        let initial = a.initial_state();
        let report = run_sim(
            &mut a,
            &jobs,
            &SimConfig {
                workers: 5,
                ..Default::default()
            },
        );
        assert_eq!(report.committed, 25);
        // Tree locking is deadlock-free: lock orders follow tree paths.
        assert_eq!(report.deadlock_aborts, 0, "tree locking cannot deadlock");
        assert_trace_ok(&report, &initial);
    }
}

#[test]
fn single_worker_runs_are_serial_and_waitless() {
    for seed in 0..3 {
        let pool: Vec<EntityId> = (0..8).map(EntityId).collect();
        let jobs = uniform_jobs(&pool, 10, 3, seed);
        for kind in [
            PolicyKind::TwoPhase,
            PolicyKind::Altruistic,
            PolicyKind::Dtr,
        ] {
            let config = SimConfig {
                workers: 1,
                ..Default::default()
            };
            let mut a = flat(kind, &pool);
            let initial = a.initial_state();
            let report = run_sim(&mut a, &jobs, &config);
            assert_eq!(report.lock_waits, 0, "MPL 1 never waits");
            assert_eq!(report.deadlock_aborts, 0);
            assert_trace_ok(&report, &initial);
        }
    }
}

#[test]
fn deadlocks_are_detected_and_resolved_under_2pl() {
    // Opposite-order jobs at high contention: deadlocks must occur AND be
    // resolved; every job still commits; the trace stays serializable.
    let pool: Vec<EntityId> = (0..4).map(EntityId).collect();
    let mut jobs = Vec::new();
    for i in 0..10 {
        if i % 2 == 0 {
            jobs.push(safe_locking::sim::Job::access(vec![
                pool[0], pool[1], pool[2],
            ]));
        } else {
            jobs.push(safe_locking::sim::Job::access(vec![
                pool[2], pool[1], pool[0],
            ]));
        }
    }
    let mut a = flat(PolicyKind::TwoPhase, &pool);
    let initial = a.initial_state();
    let report = run_sim(
        &mut a,
        &jobs,
        &SimConfig {
            workers: 4,
            ..Default::default()
        },
    );
    assert_eq!(report.committed, 10);
    assert!(
        report.deadlock_aborts > 0,
        "opposite lock orders must deadlock"
    );
    assert_trace_ok(&report, &initial);
}

#[test]
fn policy_generators_from_policies_crate_are_safe_under_verifier() {
    // Lock random transactions with the 2PL generators and verify the
    // systems with the exhaustive verifier: always safe.
    use safe_locking::core::Step;
    use safe_locking::core::{SystemBuilder, Transaction, TxId};
    use safe_locking::policies::two_phase;
    use safe_locking::verifier::{verify_safety, SearchBudget};

    for seed in 0..5u32 {
        let mut b = SystemBuilder::new();
        for i in 0..4 {
            b.exists(&format!("x{i}"));
        }
        let mk = |id: u32, order: &[u32]| {
            Transaction::new(
                TxId(id),
                order
                    .iter()
                    .flat_map(|&i| [Step::read(EntityId(i)), Step::write(EntityId(i))])
                    .collect(),
            )
        };
        let t1 = mk(1, &[seed % 4, (seed + 1) % 4]);
        let t2 = mk(2, &[(seed + 2) % 4, (seed + 3) % 4]);
        b.add_transaction(two_phase::lock_strict(&t1));
        b.add_transaction(two_phase::lock_conservative(&t2));
        let system = b.build();
        let verdict = verify_safety(&system, SearchBudget::default());
        assert!(
            verdict.is_safe(),
            "2PL-locked system must verify safe (seed {seed})"
        );
    }
}
